package workload

import (
	"fmt"
	"math"
	"sort"

	"github.com/rac-project/rac/internal/sim"
	"github.com/rac-project/rac/internal/tpcw"
)

// Arrival is one offered request: an absolute scenario time (paper-scale
// seconds from scenario start) and an interaction class.
type Arrival struct {
	T     float64
	Class tpcw.Class
}

// Source produces time-varying offered load for a load plane. Schedule (a
// compiled scenario) and Trace (a recorded capture) both implement it, so
// synthesized and captured workloads drive loadgen, the simulator and the
// analytic backend through one code path.
//
// Window is the open-loop contract: it returns the arrivals in [t0, t1),
// drawing any randomness from rng *sequentially*. Callers own the stream and
// walk windows in order — one sim.RNG consumed front to back — so what the
// arrivals are never depends on shard count, worker count or GOMAXPROCS
// (which only decide who executes each slot downstream).
type Source interface {
	// Duration is the source length in scenario seconds. Lookups past the
	// end hold the final load level, so runs may outlast their scenario.
	Duration() float64
	// Window returns the arrivals in [t0, t1), times absolute.
	Window(rng *sim.RNG, t0, t1 float64) []Arrival
	// OfferedRate is the mean offered load over [t0, t1): requests per
	// second for rate-driven sources, mean browser population for
	// population-only ones.
	OfferedRate(t0, t1 float64) float64
	// WorkloadAt is the closed-loop/simulated view of [t0, t1): the mean
	// population over the window under the window's dominant mix.
	WorkloadAt(t0, t1 float64) tpcw.Workload
}

// scheduleSeedSalt decorrelates the scenario arrival stream from every other
// consumer of a run's base seed.
const scheduleSeedSalt = 0x5CED06AD

// ScheduleRNG returns the arrival stream for a run seeded with seed. The
// open-loop driver and the trace recorder both derive their stream here, so a
// recorded trace replays the exact arrivals the driver would generate.
func ScheduleRNG(seed uint64) *sim.RNG { return sim.NewRNG(seed ^ scheduleSeedSalt) }

// cphase is one compiled phase: spec fields resolved (mix parsed, drift
// window closed) plus its absolute start time.
type cphase struct {
	name    string
	start   float64 // absolute scenario seconds
	dur     float64
	rate    float64
	clients float64
	mix     tpcw.Mix
	uniform bool // uniform arrival process (default Poisson)
	mods    []Modulation
	drift   *cdrift
}

type cdrift struct {
	to     tpcw.Mix
	t0, t1 float64 // phase-relative window
}

// factor evaluates the phase's operator stack at phase-relative time t.
func (p *cphase) factor(t float64) float64 {
	f := 1.0
	for _, m := range p.mods {
		switch m.Op {
		case OpSinusoid:
			f *= 1 + m.Amplitude*math.Sin(2*math.Pi*(t/m.PeriodSeconds+m.PhaseShift))
		case OpRamp:
			u := t / p.dur
			if u < 0 {
				u = 0
			} else if u > 1 {
				u = 1
			}
			f *= m.From + (m.To-m.From)*u
		case OpSpike:
			if t >= m.AtSeconds && t < m.AtSeconds+m.DurationSeconds {
				f *= m.Factor
			}
		}
	}
	if f < 0 {
		f = 0
	}
	return f
}

// probs returns the class probabilities at phase-relative time t, blending
// through the drift window when one is set.
func (p *cphase) probs(t float64) []float64 {
	base := tpcw.ClassProbs(p.mix)
	d := p.drift
	if d == nil || t <= d.t0 {
		return base
	}
	target := tpcw.ClassProbs(d.to)
	if t >= d.t1 {
		return target
	}
	s := (t - d.t0) / (d.t1 - d.t0)
	for i := range base {
		base[i] = (1-s)*base[i] + s*target[i]
	}
	return base
}

// Schedule is a compiled scenario: the offered-load surface plus cumulative
// integrals of rate and population on a fixed grid, so arrival placement and
// per-interval workloads are pure float math — deterministic for any
// parallelism and cheap enough for the per-interval path.
type Schedule struct {
	sc      Scenario
	phases  []cphase
	total   float64
	hasRate bool

	step    float64   // grid cell width
	cumRate []float64 // cumRate[i] = ∫₀^{i·step} rate; len gridN+1
	cumPop  []float64 // same integral of the population
	endRate float64   // rate held past the scenario end
	endPop  float64
}

// Compile validates and compiles a scenario.
func Compile(sc Scenario) (*Schedule, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	s := &Schedule{sc: sc, phases: make([]cphase, len(sc.Phases))}
	var start float64
	for i, p := range sc.Phases {
		mix, err := tpcw.ParseMix(p.Mix)
		if err != nil {
			return nil, err
		}
		cp := cphase{
			name:    p.Name,
			start:   start,
			dur:     p.DurationSeconds,
			rate:    p.Rate,
			clients: float64(p.Clients),
			mix:     mix,
			uniform: p.Arrival == "uniform",
			mods:    p.Modulate,
		}
		if cp.name == "" {
			cp.name = fmt.Sprintf("phase-%d", i+1)
		}
		if d := p.MixDrift; d != nil {
			to, err := tpcw.ParseMix(d.To)
			if err != nil {
				return nil, err
			}
			end := d.EndSeconds
			if end == 0 {
				end = p.DurationSeconds
			}
			cp.drift = &cdrift{to: to, t0: d.StartSeconds, t1: end}
		}
		if p.Rate > 0 {
			s.hasRate = true
		}
		s.phases[i] = cp
		start += p.DurationSeconds
	}
	s.total = start

	// Midpoint integration on a ~1 s grid (bounded): cum tables are piecewise
	// linear, so Cum and its inverse are exact for each other and spikes land
	// within one cell of their scripted edges.
	gridN := int(s.total + 0.5)
	if gridN < 512 {
		gridN = 512
	}
	if gridN > 1<<16 {
		gridN = 1 << 16
	}
	s.step = s.total / float64(gridN)
	s.cumRate = make([]float64, gridN+1)
	s.cumPop = make([]float64, gridN+1)
	for i := 0; i < gridN; i++ {
		mid := (float64(i) + 0.5) * s.step
		p := s.phaseAt(mid)
		f := p.factor(mid - p.start)
		s.cumRate[i+1] = s.cumRate[i] + p.rate*f*s.step
		s.cumPop[i+1] = s.cumPop[i] + p.clients*f*s.step
	}
	last := &s.phases[len(s.phases)-1]
	ef := last.factor(last.dur)
	s.endRate = last.rate * ef
	s.endPop = last.clients * ef
	return s, nil
}

// Scenario returns the compiled scenario spec.
func (s *Schedule) Scenario() Scenario { return s.sc }

// Duration returns the scenario length in scenario seconds.
func (s *Schedule) Duration() float64 { return s.total }

// phaseAt returns the phase containing t (clamped into the scenario).
func (s *Schedule) phaseAt(t float64) *cphase {
	i := sort.Search(len(s.phases), func(i int) bool {
		return s.phases[i].start+s.phases[i].dur > t
	})
	if i >= len(s.phases) {
		i = len(s.phases) - 1
	}
	return &s.phases[i]
}

// PhaseAt returns the index and name of the phase containing t. Times past
// the end report the final phase.
func (s *Schedule) PhaseAt(t float64) (int, string) {
	p := s.phaseAt(t)
	for i := range s.phases {
		if &s.phases[i] == p {
			return i, p.name
		}
	}
	return 0, p.name
}

// RateAt returns the instantaneous open-loop offered rate at t.
func (s *Schedule) RateAt(t float64) float64 {
	if t >= s.total {
		return s.endRate
	}
	if t < 0 {
		t = 0
	}
	p := s.phaseAt(t)
	return p.rate * p.factor(t-p.start)
}

// ClientsAt returns the instantaneous browser population at t (minimum 1
// when the phase defines one).
func (s *Schedule) ClientsAt(t float64) int {
	var pop float64
	if t >= s.total {
		pop = s.endPop
	} else {
		if t < 0 {
			t = 0
		}
		p := s.phaseAt(t)
		pop = p.clients * p.factor(t-p.start)
	}
	n := int(pop + 0.5)
	if n < 1 && pop > 0 {
		n = 1
	}
	return n
}

// MixProbsAt returns the interaction-class probabilities at t, in
// tpcw.Classes() order, with any drift blended in.
func (s *Schedule) MixProbsAt(t float64) []float64 {
	if t >= s.total {
		t = s.total
	}
	if t < 0 {
		t = 0
	}
	p := s.phaseAt(t)
	return p.probs(t - p.start)
}

// cum interpolates a cumulative table at t, extending past the scenario end
// at the held final level.
func (s *Schedule) cum(table []float64, end, t float64) float64 {
	if t <= 0 {
		return 0
	}
	if t >= s.total {
		return table[len(table)-1] + end*(t-s.total)
	}
	i := int(t / s.step)
	if i >= len(table)-1 {
		i = len(table) - 2
	}
	cell := (table[i+1] - table[i]) / s.step
	return table[i] + (t-float64(i)*s.step)*cell
}

// invCumRate returns the time at which the cumulative rate reaches target.
func (s *Schedule) invCumRate(target float64) float64 {
	last := s.cumRate[len(s.cumRate)-1]
	if target >= last {
		if s.endRate <= 0 {
			return s.total
		}
		return s.total + (target-last)/s.endRate
	}
	if target <= 0 {
		return 0
	}
	i := sort.SearchFloat64s(s.cumRate, target)
	if i > 0 {
		i--
	}
	cell := (s.cumRate[i+1] - s.cumRate[i]) / s.step
	if cell <= 0 {
		return float64(i+1) * s.step
	}
	return float64(i)*s.step + (target-s.cumRate[i])/cell
}

// OfferedRate returns the mean offered load over [t0, t1): requests per
// second when the scenario defines rates, mean population otherwise.
func (s *Schedule) OfferedRate(t0, t1 float64) float64 {
	if t1 <= t0 {
		return 0
	}
	if s.hasRate {
		return (s.cum(s.cumRate, s.endRate, t1) - s.cum(s.cumRate, s.endRate, t0)) / (t1 - t0)
	}
	return (s.cum(s.cumPop, s.endPop, t1) - s.cum(s.cumPop, s.endPop, t0)) / (t1 - t0)
}

// dominantMix returns the standard mix nearest (L1 on class probabilities) to
// probs — the discrete mix a blended or empirical distribution rounds to.
func dominantMix(probs []float64) tpcw.Mix {
	best := tpcw.Browsing
	bestDist := math.Inf(1)
	for _, m := range tpcw.Mixes() {
		ref := tpcw.ClassProbs(m)
		var d float64
		for i := range ref {
			d += math.Abs(probs[i] - ref[i])
		}
		if d < bestDist {
			bestDist = d
			best = m
		}
	}
	return best
}

// WorkloadAt returns the closed-loop view of [t0, t1): mean population over
// the window (derived from the rate via the TPC-W think time when the phase
// defines no population) under the window's dominant mix.
func (s *Schedule) WorkloadAt(t0, t1 float64) tpcw.Workload {
	mid := (t0 + t1) / 2
	pop := 0.0
	if t1 > t0 {
		pop = (s.cum(s.cumPop, s.endPop, t1) - s.cum(s.cumPop, s.endPop, t0)) / (t1 - t0)
	}
	if pop <= 0 {
		// Population-free phase: a closed loop offering the same rate needs
		// roughly rate × think-time browsers (think time dominates service
		// time in TPC-W sessions).
		rate := (s.cum(s.cumRate, s.endRate, t1) - s.cum(s.cumRate, s.endRate, t0)) / (t1 - t0)
		pop = rate * tpcw.MeanThinkTimeSeconds
	}
	n := int(pop + 0.5)
	if n < 1 {
		n = 1
	}
	return tpcw.Workload{Mix: dominantMix(s.MixProbsAt(mid)), Clients: n}
}

// Window returns the arrivals offered in [t0, t1), drawn sequentially from
// rng. The expected count is the integral of the rate over the window
// (rounded, like the static open-loop schedule); Poisson windows place that
// many sorted uniforms in cumulative-rate space — which is exactly a
// non-homogeneous Poisson process conditioned on its count — and uniform
// windows space them evenly in the same space. Classes are then drawn
// arrival by arrival against the drifting mix. One stream, consumed front to
// back: shard and worker counts downstream cannot change the result.
func (s *Schedule) Window(rng *sim.RNG, t0, t1 float64) []Arrival {
	if t1 <= t0 {
		return nil
	}
	c0 := s.cum(s.cumRate, s.endRate, t0)
	c1 := s.cum(s.cumRate, s.endRate, t1)
	n := int(c1 - c0 + 0.5)
	if n <= 0 {
		return nil
	}
	out := make([]Arrival, n)
	if s.phaseAt(math.Min(t0, s.total-1e-9)).uniform {
		span := (c1 - c0) / float64(n)
		for k := range out {
			out[k].T = s.invCumRate(c0 + (float64(k)+0.5)*span)
		}
	} else {
		// n sorted uniforms on [c0, c1) via normalized exponential spacings:
		// Λ_k = c0 + (c1−c0)·S_k/S_{n+1}, generated in order.
		gaps := make([]float64, n+1)
		var total float64
		for i := range gaps {
			gaps[i] = rng.ExpFloat64(1)
			total += gaps[i]
		}
		var cum float64
		for k := range out {
			cum += gaps[k]
			out[k].T = s.invCumRate(c0 + (c1-c0)*cum/total)
		}
	}
	classes := tpcw.Classes()
	for k := range out {
		out[k].Class = classes[rng.Pick(s.MixProbsAt(out[k].T))]
	}
	return out
}

var _ Source = (*Schedule)(nil)
