// Package workload poses time-varying traffic against every backend in the
// repository. A Scenario is an ordered list of phases — each with its own
// offered rate and/or browser population, traffic mix, and arrival process —
// shaped by composable modulation operators (periodic sinusoids, linear
// ramps, spike/flash-crowd windows) and an optional mix-drift schedule.
// Scenarios serialize to JSON so experiments ship them as files (see
// examples/scenarios/).
//
// Compile turns a Scenario into a Schedule: a piecewise-smooth offered-load
// surface with a precomputed cumulative-rate table, from which the open-loop
// engine draws its pre-built arrival schedule and the simulated/analytic
// backends take per-interval workloads. All randomness flows through one
// sequential sim.RNG stream, preserving the loadgen determinism contract:
// shard count, worker count and GOMAXPROCS decide only who executes an
// arrival, never what the arrivals are, so a replay is byte-identical at any
// parallelism. A Trace captures the generated arrivals as timestamped
// records; replaying one drives any backend identically to the run that
// recorded it.
package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"github.com/rac-project/rac/internal/tpcw"
)

// Op names a modulation operator.
type Op string

// The modulation operators. Factors multiply: a phase's offered load at
// phase-relative time t is its base rate (or population) times the product of
// every operator's factor at t.
const (
	// OpSinusoid is a periodic swing: factor 1 + Amplitude·sin(2π·(t/Period +
	// PhaseShift)). Stack two with different periods for multi-period cycles
	// (e.g. a diurnal wave with a weekly overlay).
	OpSinusoid Op = "sinusoid"
	// OpRamp scales linearly from From to To across the whole phase.
	OpRamp Op = "ramp"
	// OpSpike multiplies by Factor inside the window [AtSeconds,
	// AtSeconds+DurationSeconds) — a flash crowd — and is 1 outside it.
	OpSpike Op = "spike"
)

// Modulation is one operator application. Fields are a union over the
// operators; unused fields stay zero and are omitted from JSON.
type Modulation struct {
	// Op selects the operator.
	Op Op `json:"op"`

	// PeriodSeconds is the sinusoid period in scenario seconds.
	PeriodSeconds float64 `json:"periodSeconds,omitempty"`
	// Amplitude is the sinusoid swing, a fraction of the base load in (0, 1].
	Amplitude float64 `json:"amplitude,omitempty"`
	// PhaseShift offsets the sinusoid, in fractions of a period. 0.75 puts
	// the trough at phase start and the crest half a period in.
	PhaseShift float64 `json:"phaseShift,omitempty"`

	// From and To are the ramp's start and end factors (≥ 0, not both zero).
	From float64 `json:"from,omitempty"`
	To   float64 `json:"to,omitempty"`

	// AtSeconds is the spike start, relative to the phase.
	AtSeconds float64 `json:"atSeconds,omitempty"`
	// DurationSeconds is the spike width.
	DurationSeconds float64 `json:"durationSeconds,omitempty"`
	// Factor is the spike multiplier (> 0; flash crowds use > 1, brownouts
	// < 1).
	Factor float64 `json:"factor,omitempty"`
}

// Validate checks the modulation.
func (m Modulation) Validate() error {
	switch m.Op {
	case OpSinusoid:
		if m.PeriodSeconds <= 0 {
			return fmt.Errorf("workload: sinusoid needs periodSeconds > 0, got %g", m.PeriodSeconds)
		}
		if m.Amplitude <= 0 || m.Amplitude > 1 {
			return fmt.Errorf("workload: sinusoid amplitude %g outside (0, 1]", m.Amplitude)
		}
	case OpRamp:
		if m.From < 0 || m.To < 0 {
			return fmt.Errorf("workload: ramp factors must be ≥ 0, got from=%g to=%g", m.From, m.To)
		}
		if m.From == 0 && m.To == 0 {
			return fmt.Errorf("workload: ramp needs from or to set")
		}
	case OpSpike:
		if m.Factor <= 0 {
			return fmt.Errorf("workload: spike needs factor > 0, got %g", m.Factor)
		}
		if m.DurationSeconds <= 0 {
			return fmt.Errorf("workload: spike needs durationSeconds > 0, got %g", m.DurationSeconds)
		}
		if m.AtSeconds < 0 {
			return fmt.Errorf("workload: negative spike atSeconds %g", m.AtSeconds)
		}
	default:
		return fmt.Errorf("workload: unknown modulation op %q", m.Op)
	}
	return nil
}

// MixDrift blends a phase's traffic mix into another across a window — the
// browse-heavy morning turning into an order-heavy evening. Class
// probabilities interpolate linearly between the two mixes.
type MixDrift struct {
	// To names the target mix ("browsing", "shopping", "ordering").
	To string `json:"to"`
	// StartSeconds is when the drift begins, relative to the phase.
	StartSeconds float64 `json:"startSeconds,omitempty"`
	// EndSeconds is when the drift completes; 0 means the phase end.
	EndSeconds float64 `json:"endSeconds,omitempty"`
}

// Phase is one segment of a scenario: a base load level, a mix, and the
// operators shaping it over the phase's duration.
type Phase struct {
	// Name labels the phase in figures and telemetry; empty means "phase-N".
	Name string `json:"name,omitempty"`
	// DurationSeconds is the phase length in scenario (paper-scale) seconds.
	DurationSeconds float64 `json:"durationSeconds"`
	// Rate is the base open-loop offered load in requests per second. Zero
	// means the phase drives no open-loop arrivals (population-only).
	Rate float64 `json:"rate,omitempty"`
	// Clients is the base closed-loop/simulated browser population. Zero
	// derives a population from Rate via the TPC-W think time when a backend
	// needs one.
	Clients int `json:"clients,omitempty"`
	// Mix names the base traffic mix. Required.
	Mix string `json:"mix"`
	// Arrival is the open-loop arrival process for windows starting in this
	// phase: "poisson" (default) or "uniform".
	Arrival string `json:"arrival,omitempty"`
	// Modulate is the operator stack; factors multiply.
	Modulate []Modulation `json:"modulate,omitempty"`
	// MixDrift, when set, drifts the mix toward another across the phase.
	MixDrift *MixDrift `json:"mixDrift,omitempty"`
}

// Validate checks the phase.
func (p Phase) Validate() error {
	if p.DurationSeconds <= 0 {
		return fmt.Errorf("workload: phase needs durationSeconds > 0, got %g", p.DurationSeconds)
	}
	if p.Rate < 0 {
		return fmt.Errorf("workload: negative rate %g", p.Rate)
	}
	if p.Clients < 0 {
		return fmt.Errorf("workload: negative clients %d", p.Clients)
	}
	if p.Rate == 0 && p.Clients == 0 {
		return fmt.Errorf("workload: phase needs rate or clients")
	}
	if _, err := tpcw.ParseMix(p.Mix); err != nil {
		return err
	}
	switch p.Arrival {
	case "", "poisson", "uniform":
	default:
		return fmt.Errorf("workload: unknown arrival process %q (want poisson or uniform)", p.Arrival)
	}
	for i, m := range p.Modulate {
		if err := m.Validate(); err != nil {
			return fmt.Errorf("modulation %d: %w", i, err)
		}
		if m.Op == OpSpike && m.AtSeconds >= p.DurationSeconds {
			return fmt.Errorf("modulation %d: spike at %gs starts after the %gs phase ends",
				i, m.AtSeconds, p.DurationSeconds)
		}
	}
	if d := p.MixDrift; d != nil {
		if _, err := tpcw.ParseMix(d.To); err != nil {
			return err
		}
		end := d.EndSeconds
		if end == 0 {
			end = p.DurationSeconds
		}
		if d.StartSeconds < 0 || end > p.DurationSeconds || d.StartSeconds >= end {
			return fmt.Errorf("workload: mix drift window [%g, %g) invalid for a %gs phase",
				d.StartSeconds, end, p.DurationSeconds)
		}
	}
	return nil
}

// Scenario is a declarative, replayable time-varying workload.
type Scenario struct {
	// Name labels the scenario in figures and logs.
	Name string `json:"name,omitempty"`
	// Seed salts the arrival RNG stream, so two scenarios with identical
	// phases still draw different arrivals.
	Seed uint64 `json:"seed,omitempty"`
	// IntervalSeconds is the scenario's natural measurement-interval length
	// in scenario seconds; 0 means DefaultIntervalSeconds (the paper's
	// 5-minute interval).
	IntervalSeconds float64 `json:"intervalSeconds,omitempty"`
	// Phases run in order; the scenario's duration is their sum.
	Phases []Phase `json:"phases"`
}

// DefaultIntervalSeconds is the paper's 5-minute measurement interval.
const DefaultIntervalSeconds = 300

// Validate checks every phase.
func (s Scenario) Validate() error {
	if len(s.Phases) == 0 {
		return fmt.Errorf("workload: scenario needs at least one phase")
	}
	if s.IntervalSeconds < 0 {
		return fmt.Errorf("workload: negative intervalSeconds %g", s.IntervalSeconds)
	}
	for i, p := range s.Phases {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("phase %d: %w", i, err)
		}
	}
	return nil
}

// Duration returns the scenario length in scenario seconds.
func (s Scenario) Duration() float64 {
	var total float64
	for _, p := range s.Phases {
		total += p.DurationSeconds
	}
	return total
}

// Interval returns the scenario's measurement-interval length, resolving the
// default.
func (s Scenario) Interval() float64 {
	if s.IntervalSeconds > 0 {
		return s.IntervalSeconds
	}
	return DefaultIntervalSeconds
}

// Scale returns a copy with every duration — phase lengths, operator periods
// and windows, drift windows — multiplied by f. Rates, populations and the
// measurement interval are untouched, so the scenario keeps its shape but
// spans f× the intervals; quick-mode experiments compress with f < 1.
func (s Scenario) Scale(f float64) Scenario {
	out := s
	out.Phases = make([]Phase, len(s.Phases))
	for i, p := range s.Phases {
		p.DurationSeconds *= f
		if len(p.Modulate) > 0 {
			mods := make([]Modulation, len(p.Modulate))
			for j, m := range p.Modulate {
				m.PeriodSeconds *= f
				m.AtSeconds *= f
				m.DurationSeconds *= f
				mods[j] = m
			}
			p.Modulate = mods
		}
		if p.MixDrift != nil {
			d := *p.MixDrift
			d.StartSeconds *= f
			d.EndSeconds *= f
			p.MixDrift = &d
		}
		out.Phases[i] = p
	}
	return out
}

// Load reads and validates a JSON scenario.
func Load(r io.Reader) (Scenario, error) {
	var s Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("workload: decode scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// LoadFile reads and validates a JSON scenario from a file.
func LoadFile(path string) (Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return Scenario{}, fmt.Errorf("workload: %w", err)
	}
	defer f.Close()
	s, err := Load(f)
	if err != nil {
		return Scenario{}, fmt.Errorf("workload: %s: %w", path, err)
	}
	return s, nil
}

// Save writes the scenario as indented JSON.
func (s Scenario) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
