package workload

import (
	"bytes"
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/rac-project/rac/internal/telemetry"
	"github.com/rac-project/rac/internal/tpcw"
)

func TestScenarioValidation(t *testing.T) {
	cases := []struct {
		name string
		sc   Scenario
		ok   bool
	}{
		{"empty", Scenario{}, false},
		{"no load", Scenario{Phases: []Phase{{DurationSeconds: 60, Mix: "shopping"}}}, false},
		{"bad mix", Scenario{Phases: []Phase{{DurationSeconds: 60, Rate: 10, Mix: "bursty"}}}, false},
		{"bad arrival", Scenario{Phases: []Phase{{DurationSeconds: 60, Rate: 10, Mix: "shopping", Arrival: "pareto"}}}, false},
		{"ok", Scenario{Phases: []Phase{{DurationSeconds: 60, Rate: 10, Mix: "shopping"}}}, true},
		{"bad sinusoid", Scenario{Phases: []Phase{{DurationSeconds: 60, Rate: 10, Mix: "shopping",
			Modulate: []Modulation{{Op: OpSinusoid, Amplitude: 0.5}}}}}, false},
		{"amplitude too big", Scenario{Phases: []Phase{{DurationSeconds: 60, Rate: 10, Mix: "shopping",
			Modulate: []Modulation{{Op: OpSinusoid, PeriodSeconds: 60, Amplitude: 1.5}}}}}, false},
		{"spike after end", Scenario{Phases: []Phase{{DurationSeconds: 60, Rate: 10, Mix: "shopping",
			Modulate: []Modulation{{Op: OpSpike, AtSeconds: 90, DurationSeconds: 5, Factor: 2}}}}}, false},
		{"zero ramp", Scenario{Phases: []Phase{{DurationSeconds: 60, Rate: 10, Mix: "shopping",
			Modulate: []Modulation{{Op: OpRamp}}}}}, false},
		{"unknown op", Scenario{Phases: []Phase{{DurationSeconds: 60, Rate: 10, Mix: "shopping",
			Modulate: []Modulation{{Op: "sawtooth", Factor: 2}}}}}, false},
		{"drift bad mix", Scenario{Phases: []Phase{{DurationSeconds: 60, Rate: 10, Mix: "shopping",
			MixDrift: &MixDrift{To: "none"}}}}, false},
		{"drift bad window", Scenario{Phases: []Phase{{DurationSeconds: 60, Rate: 10, Mix: "shopping",
			MixDrift: &MixDrift{To: "ordering", StartSeconds: 50, EndSeconds: 40}}}}, false},
	}
	for _, tc := range cases {
		err := tc.sc.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	for name, sc := range Library() {
		var buf bytes.Buffer
		if err := sc.Save(&buf); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		back, err := Load(&buf)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		if !reflect.DeepEqual(sc, back) {
			t.Errorf("%s: round trip changed the scenario:\n  %#v\nvs\n  %#v", name, sc, back)
		}
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	if _, err := Load(bytes.NewBufferString(`{"phases": [], "burst": 3}`)); err == nil {
		t.Fatal("expected unknown-field error")
	}
}

func TestLibraryCompiles(t *testing.T) {
	for name, sc := range Library() {
		if _, err := Compile(sc); err != nil {
			t.Errorf("%s: compile: %v", name, err)
		}
	}
}

func TestScheduleShape(t *testing.T) {
	sc := Scenario{
		IntervalSeconds: 100,
		Phases: []Phase{
			{Name: "flat", DurationSeconds: 400, Rate: 10, Clients: 100, Mix: "browsing"},
			{Name: "climb", DurationSeconds: 400, Rate: 10, Clients: 100, Mix: "shopping",
				Modulate: []Modulation{{Op: OpRamp, From: 1, To: 3}}},
			{Name: "spiky", DurationSeconds: 400, Rate: 20, Clients: 200, Mix: "ordering",
				Modulate: []Modulation{{Op: OpSpike, AtSeconds: 100, DurationSeconds: 100, Factor: 2}}},
		},
	}
	s, err := Compile(sc)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Duration(); got != 1200 {
		t.Fatalf("duration = %g, want 1200", got)
	}
	approx := func(name string, got, want, tol float64) {
		t.Helper()
		if math.Abs(got-want) > tol {
			t.Errorf("%s = %g, want %g ± %g", name, got, want, tol)
		}
	}
	approx("flat rate", s.RateAt(200), 10, 1e-9)
	approx("ramp midpoint", s.RateAt(600), 20, 1e-9) // factor 2 at mid-phase
	approx("spike inside", s.RateAt(950), 40, 1e-9)
	approx("spike outside", s.RateAt(1150), 20, 1e-9)
	approx("held past end", s.RateAt(5000), 20, 1e-9)
	if got := s.ClientsAt(600); got != 200 {
		t.Errorf("ClientsAt(600) = %d, want 200", got)
	}
	if i, name := s.PhaseAt(500); i != 1 || name != "climb" {
		t.Errorf("PhaseAt(500) = %d %q, want 1 climb", i, name)
	}
	if i, name := s.PhaseAt(99999); i != 2 || name != "spiky" {
		t.Errorf("PhaseAt(past end) = %d %q, want 2 spiky", i, name)
	}
	// Mean rate over the spike interval [900, 1000) is the doubled rate.
	approx("offered over spike", s.OfferedRate(900, 1000), 40, 0.5)
	// The ramp phase integrates to 2× its base on average.
	approx("offered over ramp", s.OfferedRate(400, 800), 20, 0.5)
	if w := s.WorkloadAt(0, 100); w.Mix != tpcw.Browsing || w.Clients != 100 {
		t.Errorf("WorkloadAt(flat) = %v, want browsing×100", w)
	}
	if w := s.WorkloadAt(500, 700); w.Mix != tpcw.Shopping {
		t.Errorf("WorkloadAt(climb) mix = %v, want shopping", w.Mix)
	}
}

func TestMixDriftBlends(t *testing.T) {
	sc := Scenario{Phases: []Phase{{
		DurationSeconds: 1000, Rate: 10, Clients: 100, Mix: "browsing",
		MixDrift: &MixDrift{To: "ordering"},
	}}}
	s, err := Compile(sc)
	if err != nil {
		t.Fatal(err)
	}
	start := s.MixProbsAt(0)
	end := s.MixProbsAt(999.9)
	if !reflect.DeepEqual(start, tpcw.ClassProbs(tpcw.Browsing)) {
		t.Errorf("drift start probs = %v, want browsing", start)
	}
	for i, p := range s.MixProbsAt(500) {
		want := (tpcw.ClassProbs(tpcw.Browsing)[i] + tpcw.ClassProbs(tpcw.Ordering)[i]) / 2
		if math.Abs(p-want) > 1e-9 {
			t.Errorf("midpoint prob %d = %g, want %g", i, p, want)
		}
	}
	var sum float64
	for _, p := range end {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("end probs sum to %g", sum)
	}
	if w := s.WorkloadAt(900, 1000); w.Mix != tpcw.Ordering {
		t.Errorf("post-drift dominant mix = %v, want ordering", w.Mix)
	}
}

func TestWindowArrivals(t *testing.T) {
	s, err := Compile(Scenario{Phases: []Phase{
		{DurationSeconds: 600, Rate: 10, Mix: "shopping"},
		{DurationSeconds: 600, Rate: 10, Mix: "shopping",
			Modulate: []Modulation{{Op: OpRamp, From: 1, To: 3}}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	rng := ScheduleRNG(7)
	var all []Arrival
	for i := 0; i < 4; i++ {
		t0, t1 := float64(i)*300, float64(i+1)*300
		win := s.Window(rng, t0, t1)
		for k, a := range win {
			if a.T < t0 || a.T >= t1 {
				t.Fatalf("window %d arrival %d at %g outside [%g, %g)", i, k, a.T, t0, t1)
			}
			if k > 0 && a.T < win[k-1].T {
				t.Fatalf("window %d arrivals out of order at %d", i, k)
			}
		}
		// Count equals the rounded rate integral over the window.
		want := int(s.cum(s.cumRate, s.endRate, t1) - s.cum(s.cumRate, s.endRate, t0) + 0.5)
		if len(win) != want {
			t.Errorf("window %d: %d arrivals, want %d", i, len(win), want)
		}
		all = append(all, win...)
	}
	// Flat phase ≈ 10 req/s × 600 s; ramp phase averages 2× that.
	if n := len(all); n < 17000 || n > 19000 {
		t.Errorf("total arrivals = %d, want ≈ 18000", n)
	}

	// Same seed, same windows → identical arrivals.
	rng2 := ScheduleRNG(7)
	var again []Arrival
	for i := 0; i < 4; i++ {
		again = append(again, s.Window(rng2, float64(i)*300, float64(i+1)*300)...)
	}
	if !reflect.DeepEqual(all, again) {
		t.Error("same seed replay diverged")
	}

	// Different seed → different arrivals.
	rng3 := ScheduleRNG(8)
	other := s.Window(rng3, 0, 300)
	if reflect.DeepEqual(all[:len(other)], other) {
		t.Error("different seeds produced identical arrivals")
	}
}

func TestUniformWindowIsEvenlySpaced(t *testing.T) {
	s, err := Compile(Scenario{Phases: []Phase{
		{DurationSeconds: 100, Rate: 10, Mix: "browsing", Arrival: "uniform"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	win := s.Window(ScheduleRNG(1), 0, 100)
	if len(win) != 1000 {
		t.Fatalf("got %d arrivals, want 1000", len(win))
	}
	gap := win[1].T - win[0].T
	for k := 2; k < len(win); k++ {
		if math.Abs(win[k].T-win[k-1].T-gap) > 1e-6 {
			t.Fatalf("uneven gap at %d: %g vs %g", k, win[k].T-win[k-1].T, gap)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	s, err := Compile(FlashCrowd())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := RecordTrace(s, 99, 300, 14)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Arrivals()) == 0 {
		t.Fatal("recorded no arrivals")
	}

	// Serialize and parse back: identical header and records.
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Header, back.Header) {
		t.Errorf("header changed: %#v vs %#v", tr.Header, back.Header)
	}
	if !reflect.DeepEqual(tr.Arrivals(), back.Arrivals()) {
		t.Error("records changed across serialization")
	}

	// Replaying the trace yields exactly the arrivals the schedule generated.
	rng := ScheduleRNG(99)
	for i := 0; i < 14; i++ {
		t0, t1 := float64(i)*300, float64(i+1)*300
		want := s.Window(rng, t0, t1)
		got := back.Window(nil, t0, t1)
		if len(want) == 0 {
			t.Fatalf("interval %d: schedule offered nothing", i)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("interval %d: replay diverged (%d vs %d arrivals)", i, len(got), len(want))
		}
	}

	// The replayed closed-loop view tracks the spike.
	calm := back.WorkloadAt(0, 300)
	crowd := back.WorkloadAt(2700, 3000) // inside the 2.5× spike window
	if crowd.Clients < 2*calm.Clients {
		t.Errorf("spike window population %d not ≈2.5× calm %d", crowd.Clients, calm.Clients)
	}
}

func TestSequencer(t *testing.T) {
	s, err := Compile(Ramp())
	if err != nil {
		t.Fatal(err)
	}
	q := NewSequencer(s, s.Scenario().Interval())
	if got := q.Len(); got != 12 {
		t.Fatalf("Len = %d, want 12 (3600 s / 300 s)", got)
	}
	first, last := q.At(0), q.At(q.Len()-1)
	if first.PhaseName != "idle" || last.PhaseName != "climb" {
		t.Errorf("phases = %q … %q, want idle … climb", first.PhaseName, last.PhaseName)
	}
	if last.OfferedRate <= first.OfferedRate*2 {
		t.Errorf("ramp did not climb: %g → %g", first.OfferedRate, last.OfferedRate)
	}
	if first.Workload.Mix != tpcw.Browsing || last.Workload.Mix != tpcw.Shopping {
		t.Errorf("mixes = %v … %v", first.Workload.Mix, last.Workload.Mix)
	}
}

func TestSequencerTelemetry(t *testing.T) {
	s, err := Compile(Ramp())
	if err != nil {
		t.Fatal(err)
	}
	q := NewSequencer(s, 300)
	reg := telemetry.NewRegistry()
	q.SetTelemetry(reg)
	for i := 0; i < q.Len(); i++ {
		q.Observe(i)
	}
	if got := q.transitions.Value(); got != 1 {
		t.Errorf("phase transitions = %d, want 1", got)
	}
	want := q.At(q.Len() - 1).OfferedRate
	if got := q.offered.Value(); got != want {
		t.Errorf("offered gauge = %g, want %g", got, want)
	}
}

func TestScale(t *testing.T) {
	sc := Diurnal()
	half := sc.Scale(0.5)
	if got, want := half.Duration(), sc.Duration()/2; got != want {
		t.Fatalf("scaled duration = %g, want %g", got, want)
	}
	day := half.Phases[2]
	if m := day.Modulate[0]; m.PeriodSeconds != 32400 {
		t.Errorf("scaled period = %g, want 32400", m.PeriodSeconds)
	}
	if m := day.Modulate[1]; m.AtSeconds != 21600 || m.DurationSeconds != 2700 {
		t.Errorf("scaled spike = at %g dur %g", m.AtSeconds, m.DurationSeconds)
	}
	if d := half.Phases[3].MixDrift; d.StartSeconds != 0 || d.EndSeconds != 2700 {
		t.Errorf("scaled drift window = [%g, %g]", d.StartSeconds, d.EndSeconds)
	}
	// The original is untouched (Scale deep-copies the slices it edits).
	if sc.Phases[2].Modulate[0].PeriodSeconds != 64800 {
		t.Error("Scale mutated its receiver")
	}
	if _, err := Compile(half); err != nil {
		t.Errorf("scaled scenario no longer compiles: %v", err)
	}
}

// TestExamplesMatchLibrary keeps the shipped examples/scenarios/*.json files
// byte-honest with the in-code library constructors they document.
func TestExamplesMatchLibrary(t *testing.T) {
	for name, want := range Library() {
		got, err := LoadFile(filepath.Join("..", "..", "examples", "scenarios", name+".json"))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("examples/scenarios/%s.json differs from workload.Library()[%q]:\nfile: %+v\ncode: %+v",
				name, name, got, want)
		}
	}
}
