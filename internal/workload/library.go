package workload

import "fmt"

// The built-in scenario library. Each constructor is the canonical in-code
// form of the matching examples/scenarios/*.json file (a test keeps them
// identical), so experiments can reference library scenarios by name without
// a file path and the shipped JSON stays honest.

// Diurnal is a compressed 24-hour day in five phases: a quiet night, a
// morning ramp through the capacity knee, a long daytime plateau with a
// gentle sinusoidal wave and a mid-afternoon flash crowd, an evening
// wind-down whose traffic drifts from shopping to order-heavy, and a late
// ordering tail. It is the racbench -fig diurnal workload: the plateau sits
// where a mis-sized static configuration violates the SLA every interval but
// a well-adapted one does not.
func Diurnal() Scenario {
	return Scenario{
		Name:            "diurnal",
		Seed:            24,
		IntervalSeconds: 900,
		Phases: []Phase{
			{
				Name:            "night",
				DurationSeconds: 5400,
				Rate:            20,
				Clients:         500,
				Mix:             "shopping",
			},
			{
				Name:            "morning",
				DurationSeconds: 10800,
				Rate:            47,
				Clients:         1200,
				Mix:             "shopping",
				Modulate: []Modulation{
					{Op: OpRamp, From: 0.4, To: 1},
				},
			},
			{
				Name:            "day",
				DurationSeconds: 64800,
				Rate:            47,
				Clients:         1200,
				Mix:             "shopping",
				Modulate: []Modulation{
					{Op: OpSinusoid, PeriodSeconds: 64800, Amplitude: 0.03},
					{Op: OpSpike, AtSeconds: 43200, DurationSeconds: 5400, Factor: 1.05},
				},
			},
			{
				Name:            "evening",
				DurationSeconds: 5400,
				Rate:            46,
				Clients:         1150,
				Mix:             "shopping",
				Modulate: []Modulation{
					{Op: OpRamp, From: 1, To: 0.45},
				},
				MixDrift: &MixDrift{To: "ordering", StartSeconds: 0, EndSeconds: 5400},
			},
			{
				Name:            "late",
				DurationSeconds: 5400,
				Rate:            19,
				Clients:         480,
				Mix:             "ordering",
			},
		},
	}
}

// FlashCrowd is a calm plateau interrupted by a 2.5× ten-minute spike.
func FlashCrowd() Scenario {
	return Scenario{
		Name:            "flashcrowd",
		Seed:            25,
		IntervalSeconds: 300,
		Phases: []Phase{
			{
				Name:            "calm",
				DurationSeconds: 1800,
				Rate:            30,
				Clients:         800,
				Mix:             "shopping",
			},
			{
				Name:            "crowd",
				DurationSeconds: 2400,
				Rate:            30,
				Clients:         800,
				Mix:             "shopping",
				Modulate: []Modulation{
					{Op: OpSpike, AtSeconds: 600, DurationSeconds: 600, Factor: 2.5},
				},
			},
		},
	}
}

// Ramp climbs linearly to 3× load after an idle warmup — the slow build of
// a launch day. Its two phases make it the workload-smoke scenario.
func Ramp() Scenario {
	return Scenario{
		Name:            "ramp",
		Seed:            26,
		IntervalSeconds: 300,
		Phases: []Phase{
			{
				Name:            "idle",
				DurationSeconds: 1200,
				Rate:            15,
				Clients:         400,
				Mix:             "browsing",
			},
			{
				Name:            "climb",
				DurationSeconds: 2400,
				Rate:            15,
				Clients:         400,
				Mix:             "shopping",
				Modulate: []Modulation{
					{Op: OpRamp, From: 1, To: 3},
				},
			},
		},
	}
}

// MixDriftScenario holds load level while the traffic composition slides
// from browse-heavy to order-heavy — a context change with no rate change.
func MixDriftScenario() Scenario {
	return Scenario{
		Name:            "mixdrift",
		Seed:            27,
		IntervalSeconds: 300,
		Phases: []Phase{
			{
				Name:            "browse",
				DurationSeconds: 1200,
				Rate:            35,
				Clients:         900,
				Mix:             "browsing",
			},
			{
				Name:            "drift",
				DurationSeconds: 2400,
				Rate:            35,
				Clients:         900,
				Mix:             "browsing",
				MixDrift:        &MixDrift{To: "ordering"},
			},
		},
	}
}

// Steady is a constant-load control scenario.
func Steady() Scenario {
	return Scenario{
		Name:            "steady",
		Seed:            28,
		IntervalSeconds: 300,
		Phases: []Phase{{
			Name:            "steady",
			DurationSeconds: 3600,
			Rate:            40,
			Clients:         1100,
			Mix:             "shopping",
		}},
	}
}

// Overload is the admission-gate stressor: a calm plateau, then a sustained
// flash crowd that pushes the offered load well past the web tier's capacity
// knee. racbench -fig overload runs it twice — gated and ungated — to show
// the SLO admission gate holding goodput and tail latency where the ungated
// system collapses.
func Overload() Scenario {
	return Scenario{
		Name:            "overload",
		Seed:            29,
		IntervalSeconds: 300,
		Phases: []Phase{
			{
				Name:            "calm",
				DurationSeconds: 1200,
				Rate:            30,
				Clients:         900,
				Mix:             "shopping",
			},
			{
				Name:            "overload",
				DurationSeconds: 1800,
				Rate:            30,
				Clients:         900,
				Mix:             "shopping",
				Modulate: []Modulation{
					{Op: OpSpike, AtSeconds: 300, DurationSeconds: 900, Factor: 2.5},
				},
			},
		},
	}
}

// Resolve returns the scenario arg names: a library scenario ("diurnal",
// "ramp", …) when arg matches one, otherwise the JSON scenario file at that
// path. Every command-line and config surface that accepts a scenario goes
// through this, so the two spellings stay interchangeable.
func Resolve(arg string) (Scenario, error) {
	if sc, ok := Library()[arg]; ok {
		return sc, nil
	}
	sc, err := LoadFile(arg)
	if err != nil {
		return Scenario{}, fmt.Errorf("workload: scenario %q is neither a library name nor a loadable file: %w", arg, err)
	}
	return sc, nil
}

// LibraryNames lists the built-in scenarios in stable order.
func LibraryNames() []string {
	return []string{"diurnal", "flashcrowd", "mixdrift", "overload", "ramp", "steady"}
}

// Library returns the built-in scenarios by name.
func Library() map[string]Scenario {
	return map[string]Scenario{
		"diurnal":    Diurnal(),
		"flashcrowd": FlashCrowd(),
		"mixdrift":   MixDriftScenario(),
		"overload":   Overload(),
		"ramp":       Ramp(),
		"steady":     Steady(),
	}
}
