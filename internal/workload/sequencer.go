package workload

import (
	"math"

	"github.com/rac-project/rac/internal/telemetry"
	"github.com/rac-project/rac/internal/tpcw"
)

// Interval is one measurement interval's slice of a source: its window, the
// offered load over it, the closed-loop workload equivalent, and (for
// compiled scenarios) the phase it falls in.
type Interval struct {
	// Index is the 0-based interval number.
	Index int
	// Start and End bound the window in scenario seconds.
	Start, End float64
	// OfferedRate is the mean offered load over the window (see
	// Source.OfferedRate for units).
	OfferedRate float64
	// Workload is the closed-loop/simulated equivalent of the window.
	Workload tpcw.Workload
	// Phase and PhaseName identify the scenario phase at the window start;
	// traces report phase 0 with an empty name.
	Phase     int
	PhaseName string
}

// phased is implemented by sources that know their phase structure.
type phased interface {
	PhaseAt(t float64) (int, string)
}

// Sequencer walks a source one measurement interval at a time — the
// experiment driver's clock. It is the single place per-interval offered
// load becomes observable: Observe updates the workload telemetry
// instruments as the run crosses phase boundaries.
type Sequencer struct {
	src      Source
	interval float64

	transitions *telemetry.Counter
	offered     *telemetry.Gauge
	lastPhase   int
}

// NewSequencer returns a sequencer slicing src into intervals of
// intervalSeconds (0 means DefaultIntervalSeconds; compiled scenarios carry
// their own preference in Scenario.Interval).
func NewSequencer(src Source, intervalSeconds float64) *Sequencer {
	if intervalSeconds <= 0 {
		intervalSeconds = DefaultIntervalSeconds
	}
	return &Sequencer{src: src, interval: intervalSeconds, lastPhase: -1}
}

// Source returns the sequenced source.
func (q *Sequencer) Source() Source { return q.src }

// IntervalSeconds returns the window length.
func (q *Sequencer) IntervalSeconds() float64 { return q.interval }

// Len returns how many whole intervals cover the source (at least 1).
func (q *Sequencer) Len() int {
	n := int(math.Ceil(q.src.Duration()/q.interval - 1e-9))
	if n < 1 {
		n = 1
	}
	return n
}

// SetTelemetry registers the workload instruments on reg: a phase-transition
// counter and the current offered-rate gauge. Call before the run; Observe
// keeps them current.
func (q *Sequencer) SetTelemetry(reg *telemetry.Registry) {
	q.transitions = reg.Counter("rac_workload_phase_transitions_total",
		"Scenario phase boundaries crossed by the workload sequencer.", nil)
	q.offered = reg.Gauge("rac_workload_offered_rate",
		"Offered load of the current measurement interval (req/s, or mean population for population-only scenarios).", nil)
}

// At describes interval i without touching telemetry.
func (q *Sequencer) At(i int) Interval {
	t0 := float64(i) * q.interval
	t1 := t0 + q.interval
	iv := Interval{
		Index:       i,
		Start:       t0,
		End:         t1,
		OfferedRate: q.src.OfferedRate(t0, t1),
		Workload:    q.src.WorkloadAt(t0, t1),
	}
	if p, ok := q.src.(phased); ok {
		iv.Phase, iv.PhaseName = p.PhaseAt(t0)
	}
	return iv
}

// Observe describes interval i and updates the telemetry instruments,
// counting a phase transition when i's phase differs from the last observed
// one.
func (q *Sequencer) Observe(i int) Interval {
	iv := q.At(i)
	if q.offered != nil {
		q.offered.Set(iv.OfferedRate)
	}
	if q.lastPhase >= 0 && iv.Phase != q.lastPhase && q.transitions != nil {
		q.transitions.Inc()
	}
	q.lastPhase = iv.Phase
	return iv
}
