package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/rac-project/rac/internal/sim"
	"github.com/rac-project/rac/internal/tpcw"
)

// TraceVersion is the trace format version this package writes.
const TraceVersion = 2

// TraceHeader is the first line of a trace file: capture-wide metadata the
// replayer needs to reconstruct closed-loop workloads.
type TraceHeader struct {
	// Version is the format version (TraceVersion).
	Version int `json:"version"`
	// Name labels the capture (usually the source scenario's name).
	Name string `json:"name,omitempty"`
	// DurationSeconds is the captured span in scenario seconds.
	DurationSeconds float64 `json:"durationSeconds"`
	// IntervalSeconds is the window length the recorder walked; replaying
	// with the same windows reproduces the capture byte for byte.
	IntervalSeconds float64 `json:"intervalSeconds,omitempty"`
	// BaseClients and BaseRate anchor the closed-loop view: a replay window
	// offering r req/s maps to round(BaseClients·r/BaseRate) browsers.
	BaseClients int     `json:"baseClients,omitempty"`
	BaseRate    float64 `json:"baseRate,omitempty"`
}

// TraceRecord is one timestamped arrival: scenario time and interaction
// class. Records stream one JSON object per line after the header.
type TraceRecord struct {
	T     float64 `json:"t"`
	Class string  `json:"class"`
}

// Trace is a captured (or synthesized) arrival stream. It implements Source:
// replaying a trace drives any backend exactly like the run that recorded
// it — Window slices the records and consumes no randomness.
type Trace struct {
	Header   TraceHeader
	arrivals []Arrival
}

// NewTrace builds a trace from already-sorted arrivals.
func NewTrace(header TraceHeader, arrivals []Arrival) *Trace {
	if header.Version == 0 {
		header.Version = TraceVersion
	}
	return &Trace{Header: header, arrivals: arrivals}
}

// Arrivals returns the trace's records.
func (t *Trace) Arrivals() []Arrival { return t.arrivals }

// RecordTrace captures the arrivals a run over src would generate: it walks
// intervals windows of intervalSeconds each, consuming one ScheduleRNG(seed)
// stream front to back — the same derivation the open-loop driver uses, so a
// driver run with the same seed and interval offers these exact arrivals.
func RecordTrace(src Source, seed uint64, intervalSeconds float64, intervals int) (*Trace, error) {
	if intervalSeconds <= 0 {
		return nil, fmt.Errorf("workload: record needs intervalSeconds > 0, got %g", intervalSeconds)
	}
	if intervals <= 0 {
		return nil, fmt.Errorf("workload: record needs intervals > 0, got %d", intervals)
	}
	rng := ScheduleRNG(seed)
	var arrivals []Arrival
	for i := 0; i < intervals; i++ {
		t0 := float64(i) * intervalSeconds
		arrivals = append(arrivals, src.Window(rng, t0, t0+intervalSeconds)...)
	}
	dur := float64(intervals) * intervalSeconds
	h := TraceHeader{
		Version:         TraceVersion,
		DurationSeconds: dur,
		IntervalSeconds: intervalSeconds,
		BaseRate:        float64(len(arrivals)) / dur,
	}
	if s, ok := src.(*Schedule); ok {
		h.Name = s.sc.Name
	}
	w := src.WorkloadAt(0, dur)
	h.BaseClients = w.Clients
	return &Trace{Header: h, arrivals: arrivals}, nil
}

// Duration returns the captured span.
func (t *Trace) Duration() float64 { return t.Header.DurationSeconds }

// window returns the index range [lo, hi) of arrivals in [t0, t1).
func (t *Trace) window(t0, t1 float64) (int, int) {
	lo := sort.Search(len(t.arrivals), func(i int) bool { return t.arrivals[i].T >= t0 })
	hi := sort.Search(len(t.arrivals), func(i int) bool { return t.arrivals[i].T >= t1 })
	return lo, hi
}

// Window returns the recorded arrivals in [t0, t1). The rng is unused — a
// replay consumes no randomness, which is what makes it a replay.
func (t *Trace) Window(_ *sim.RNG, t0, t1 float64) []Arrival {
	lo, hi := t.window(t0, t1)
	if lo >= hi {
		return nil
	}
	out := make([]Arrival, hi-lo)
	copy(out, t.arrivals[lo:hi])
	return out
}

// OfferedRate returns the recorded arrival rate over [t0, t1).
func (t *Trace) OfferedRate(t0, t1 float64) float64 {
	if t1 <= t0 {
		return 0
	}
	lo, hi := t.window(t0, t1)
	return float64(hi-lo) / (t1 - t0)
}

// WorkloadAt reconstructs the closed-loop view of [t0, t1): the population
// scales with the window's recorded rate against the capture baseline, and
// the mix is the standard mix nearest the window's empirical class
// distribution.
func (t *Trace) WorkloadAt(t0, t1 float64) tpcw.Workload {
	lo, hi := t.window(t0, t1)
	counts := make([]float64, len(tpcw.Classes()))
	for _, a := range t.arrivals[lo:hi] {
		counts[int(a.Class)-1]++
	}
	mix := tpcw.Shopping
	if hi > lo {
		n := float64(hi - lo)
		for i := range counts {
			counts[i] /= n
		}
		mix = dominantMix(counts)
	}
	clients := t.Header.BaseClients
	if clients <= 0 {
		clients = 1
	}
	if t.Header.BaseRate > 0 && t1 > t0 {
		scaled := float64(t.Header.BaseClients) * t.OfferedRate(t0, t1) / t.Header.BaseRate
		clients = int(scaled + 0.5)
		if clients < 1 {
			clients = 1
		}
	}
	return tpcw.Workload{Mix: mix, Clients: clients}
}

// Write streams the trace: the header line, then one record per line.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(t.Header); err != nil {
		return fmt.Errorf("workload: write trace header: %w", err)
	}
	for _, a := range t.arrivals {
		if err := enc.Encode(TraceRecord{T: a.T, Class: a.Class.String()}); err != nil {
			return fmt.Errorf("workload: write trace record: %w", err)
		}
	}
	return bw.Flush()
}

// ReadTrace parses a trace stream written by Write.
func ReadTrace(r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var h TraceHeader
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("workload: read trace header: %w", err)
	}
	if h.Version != TraceVersion {
		return nil, fmt.Errorf("workload: unsupported trace version %d (want %d)", h.Version, TraceVersion)
	}
	var arrivals []Arrival
	for {
		var rec TraceRecord
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("workload: read trace record %d: %w", len(arrivals), err)
		}
		class, err := tpcw.ParseClass(rec.Class)
		if err != nil {
			return nil, fmt.Errorf("workload: trace record %d: %w", len(arrivals), err)
		}
		if n := len(arrivals); n > 0 && rec.T < arrivals[n-1].T {
			return nil, fmt.Errorf("workload: trace record %d out of order (t=%g after %g)",
				n, rec.T, arrivals[n-1].T)
		}
		arrivals = append(arrivals, Arrival{T: rec.T, Class: class})
	}
	return &Trace{Header: h, arrivals: arrivals}, nil
}

// LoadTraceFile reads a trace file.
func LoadTraceFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	defer f.Close()
	t, err := ReadTrace(f)
	if err != nil {
		return nil, fmt.Errorf("workload: %s: %w", path, err)
	}
	return t, nil
}

var _ Source = (*Trace)(nil)
