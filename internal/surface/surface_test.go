package surface

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/rac-project/rac/internal/telemetry"
)

func counterValue(t *testing.T, reg *telemetry.Registry, name string) int64 {
	t.Helper()
	return reg.Counter(name, "", nil).Value()
}

func TestDoMemoizes(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := New(reg)
	var calls int32
	compute := func() (float64, error) {
		atomic.AddInt32(&calls, 1)
		return 42, nil
	}
	for i := 0; i < 3; i++ {
		v, err := c.Do("k", compute)
		if err != nil || v != 42 {
			t.Fatalf("Do = %v, %v", v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	if c.Len() != 1 {
		t.Fatalf("cache has %d entries, want 1", c.Len())
	}
	if hits := counterValue(t, reg, "rac_surface_cache_hits_total"); hits != 2 {
		t.Fatalf("hits = %d, want 2", hits)
	}
	if misses := counterValue(t, reg, "rac_surface_cache_misses_total"); misses != 1 {
		t.Fatalf("misses = %d, want 1", misses)
	}
}

func TestDoMemoizesErrors(t *testing.T) {
	c := New(nil)
	boom := errors.New("boom")
	var calls int
	for i := 0; i < 2; i++ {
		if _, err := c.Do("bad", func() (float64, error) {
			calls++
			return 0, boom
		}); !errors.Is(err, boom) {
			t.Fatalf("Do error = %v, want boom", err)
		}
	}
	if calls != 1 {
		t.Fatalf("failing compute ran %d times, want 1", calls)
	}
}

func TestNilCachePassesThrough(t *testing.T) {
	var c *Cache
	var calls int
	for i := 0; i < 2; i++ {
		v, err := c.Do("k", func() (float64, error) {
			calls++
			return 7, nil
		})
		if err != nil || v != 7 {
			t.Fatalf("Do = %v, %v", v, err)
		}
	}
	if calls != 2 {
		t.Fatalf("nil cache memoized: %d calls, want 2", calls)
	}
	if c.Len() != 0 {
		t.Fatalf("nil cache Len = %d", c.Len())
	}
}

// TestDoConcurrentSingleflight hammers overlapping keys from many goroutines:
// each key's compute must run exactly once, every caller must observe that
// one result, and the race detector must stay quiet.
func TestDoConcurrentSingleflight(t *testing.T) {
	c := New(telemetry.NewRegistry())
	const keys = 16
	const workers = 8
	var computes [keys]int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				k := (i + w) % keys
				v, err := c.Do(fmt.Sprintf("key-%d", k), func() (float64, error) {
					atomic.AddInt32(&computes[k], 1)
					return float64(k) * 1.5, nil
				})
				if err != nil || v != float64(k)*1.5 {
					t.Errorf("Do(key-%d) = %v, %v", k, v, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for k, n := range computes {
		if n != 1 {
			t.Errorf("key-%d computed %d times, want 1", k, n)
		}
	}
	if c.Len() != keys {
		t.Errorf("cache has %d entries, want %d", c.Len(), keys)
	}
}
