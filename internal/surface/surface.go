// Package surface memoizes response-surface evaluations. Policy training and
// best-config searches evaluate the same (configuration, context, sampling)
// points over and over — coarse-lattice sweeps repeat across figures, and
// regression baselines re-measure configurations the sweep already visited —
// so a concurrency-safe memo in front of the analytic and simulated measure
// paths removes that repeated work without changing a single figure.
//
// The cache deliberately stores only scalars keyed by strings: callers fold
// every input the evaluation depends on (configuration key, workload mix,
// client count, VM level, sampling windows, measurement seed) into the key,
// which is what makes a hit byte-identical to a recomputation. Entries are
// deduplicated in flight: concurrent requests for one key run the compute
// function exactly once and share its result, the same singleflight idiom the
// bench harness uses for whole policies.
package surface

import (
	"sync"

	"github.com/rac-project/rac/internal/telemetry"
)

// Cache is a concurrency-safe memo from evaluation keys to scalar results.
// The zero value is unusable; construct with New. A nil *Cache is valid and
// caches nothing — callers can thread an optional cache without branching.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*entry

	hits   *telemetry.Counter
	misses *telemetry.Counter
}

// entry is one memoized (or in-flight) evaluation.
type entry struct {
	once sync.Once
	val  any
	err  error
}

// New builds an empty cache. When reg is non-nil the cache registers
// rac_surface_cache_hits_total and rac_surface_cache_misses_total on it.
func New(reg *telemetry.Registry) *Cache {
	c := &Cache{entries: make(map[string]*entry)}
	if reg != nil {
		c.hits = reg.Counter("rac_surface_cache_hits_total",
			"Response-surface evaluations served from the memo.", nil)
		c.misses = reg.Counter("rac_surface_cache_misses_total",
			"Response-surface evaluations computed and memoized.", nil)
	}
	return c
}

// Do returns the memoized scalar for key, running compute at most once per
// key across all goroutines. Errors are memoized like values: the evaluations
// being cached are deterministic, so a failed key fails every time. On a nil
// cache Do simply runs compute.
func (c *Cache) Do(key string, compute func() (float64, error)) (float64, error) {
	v, err := c.DoValue(key, func() (any, error) { return compute() })
	if v == nil {
		return 0, err
	}
	return v.(float64), err
}

// DoValue is Do for non-scalar evaluations (e.g. a full simulated-measurement
// stats struct). Callers must store a consistent type per key.
func (c *Cache) DoValue(key string, compute func() (any, error)) (any, error) {
	if c == nil {
		return compute()
	}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &entry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	if ok {
		if c.hits != nil {
			c.hits.Inc()
		}
	} else if c.misses != nil {
		c.misses.Inc()
	}
	e.once.Do(func() {
		e.val, e.err = compute()
	})
	return e.val, e.err
}

// Len returns the number of memoized (or in-flight) keys.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
