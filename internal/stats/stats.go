// Package stats provides the small set of streaming and batch statistics the
// agent and the benchmark harness rely on: Welford running moments, sliding
// windows, exponentially weighted averages, and percentile summaries.
package stats

import (
	"math"
	"sort"
)

// Running accumulates count, mean and variance using Welford's algorithm.
// The zero value is ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (r *Running) Add(x float64) {
	if r.n == 0 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	r.n++
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// Count returns the number of samples seen.
func (r *Running) Count() int { return r.n }

// Mean returns the sample mean, or zero when empty.
func (r *Running) Mean() float64 { return r.mean }

// Min returns the smallest sample, or zero when empty.
func (r *Running) Min() float64 { return r.min }

// Max returns the largest sample, or zero when empty.
func (r *Running) Max() float64 { return r.max }

// Variance returns the unbiased sample variance, or zero with fewer than two
// samples.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Reset clears the accumulator.
func (r *Running) Reset() { *r = Running{} }

// Merge folds another accumulator into r (parallel Welford merge).
func (r *Running) Merge(o Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = o
		return
	}
	n := r.n + o.n
	delta := o.mean - r.mean
	mean := r.mean + delta*float64(o.n)/float64(n)
	m2 := r.m2 + o.m2 + delta*delta*float64(r.n)*float64(o.n)/float64(n)
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
	r.n, r.mean, r.m2 = n, mean, m2
}

// EWMA is an exponentially weighted moving average. The zero value with a
// zero alpha is unusable; construct with NewEWMA.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an average with smoothing factor alpha in (0, 1]; larger
// alpha weights recent samples more heavily. Alpha is clamped into (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 {
		alpha = 0.01
	}
	if alpha > 1 {
		alpha = 1
	}
	return &EWMA{alpha: alpha}
}

// Add folds x into the average. The first sample initializes the value.
func (e *EWMA) Add(x float64) {
	if !e.init {
		e.value = x
		e.init = true
		return
	}
	e.value += e.alpha * (x - e.value)
}

// Value returns the current average, or zero before any sample.
func (e *EWMA) Value() float64 { return e.value }

// Initialized reports whether at least one sample has been added.
func (e *EWMA) Initialized() bool { return e.init }

// Window is a fixed-capacity sliding window of float64 samples.
type Window struct {
	buf  []float64
	next int
	full bool
}

// NewWindow returns a window holding the most recent n samples. n must be
// positive; non-positive values are treated as 1.
func NewWindow(n int) *Window {
	if n < 1 {
		n = 1
	}
	return &Window{buf: make([]float64, n)}
}

// Add appends x, evicting the oldest sample once the window is full.
func (w *Window) Add(x float64) {
	w.buf[w.next] = x
	w.next++
	if w.next == len(w.buf) {
		w.next = 0
		w.full = true
	}
}

// Len returns the number of live samples.
func (w *Window) Len() int {
	if w.full {
		return len(w.buf)
	}
	return w.next
}

// Full reports whether the window has reached capacity.
func (w *Window) Full() bool { return w.full }

// Mean returns the mean of the live samples, or zero when empty.
func (w *Window) Mean() float64 {
	n := w.Len()
	if n == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += w.buf[i]
	}
	return sum / float64(n)
}

// Values returns a copy of the live samples in insertion order.
func (w *Window) Values() []float64 {
	n := w.Len()
	if n == 0 {
		return nil
	}
	out := make([]float64, 0, n)
	if w.full {
		out = append(out, w.buf[w.next:]...)
	}
	out = append(out, w.buf[:w.next]...)
	return out
}

// Reset clears the window.
func (w *Window) Reset() {
	w.next = 0
	w.full = false
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It returns zero for an empty slice.
// The input is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary is a batch percentile summary of a sample.
type Summary struct {
	Count int
	Mean  float64
	Std   float64
	Min   float64
	P50   float64
	P90   float64
	P95   float64
	P99   float64
	Max   float64
}

// Summarize computes a Summary of xs. An empty input yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	var run Running
	for _, x := range xs {
		run.Add(x)
	}
	return Summary{
		Count: len(xs),
		Mean:  run.Mean(),
		Std:   run.StdDev(),
		Min:   sorted[0],
		P50:   quantileSorted(sorted, 0.50),
		P90:   quantileSorted(sorted, 0.90),
		P95:   quantileSorted(sorted, 0.95),
		P99:   quantileSorted(sorted, 0.99),
		Max:   sorted[len(sorted)-1],
	}
}

// RelChange returns |cur-ref|/|ref|, the relative deviation used by the
// agent's violation detector. A zero reference yields zero to avoid division
// blow-ups on cold starts.
func RelChange(cur, ref float64) float64 {
	if ref == 0 {
		return 0
	}
	return math.Abs(cur-ref) / math.Abs(ref)
}
