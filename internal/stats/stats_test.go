package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestRunningBasics(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.Count() != 8 {
		t.Fatalf("Count = %d", r.Count())
	}
	if !almost(r.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v", r.Mean())
	}
	// Unbiased variance of this classic sample is 32/7.
	if !almost(r.Variance(), 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v", r.Variance())
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", r.Min(), r.Max())
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Variance() != 0 || r.StdDev() != 0 {
		t.Fatal("empty accumulator not zero")
	}
}

func TestRunningSingleSampleVariance(t *testing.T) {
	var r Running
	r.Add(5)
	if r.Variance() != 0 {
		t.Fatalf("single-sample variance %v", r.Variance())
	}
}

func TestRunningMergeMatchesSequential(t *testing.T) {
	check := func(seed int64) bool {
		xs := make([]float64, 0, 40)
		v := float64(seed%1000) / 7
		for i := 0; i < 40; i++ {
			v = v*1.1 + float64(i%13) - 6
			xs = append(xs, v)
		}
		var all, a, b Running
		for i, x := range xs {
			all.Add(x)
			if i < 17 {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(b)
		return a.Count() == all.Count() &&
			almost(a.Mean(), all.Mean(), 1e-9*math.Abs(all.Mean())+1e-9) &&
			almost(a.Variance(), all.Variance(), 1e-6*math.Abs(all.Variance())+1e-9) &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunningMergeEmpty(t *testing.T) {
	var a, b Running
	a.Add(1)
	a.Merge(b) // merging empty is a no-op
	if a.Count() != 1 {
		t.Fatal("merge with empty changed count")
	}
	var c Running
	c.Merge(a) // merging into empty copies
	if c.Count() != 1 || c.Mean() != 1 {
		t.Fatal("merge into empty did not copy")
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Initialized() {
		t.Fatal("fresh EWMA claims initialization")
	}
	e.Add(10)
	if e.Value() != 10 {
		t.Fatalf("first sample: %v", e.Value())
	}
	e.Add(20)
	if !almost(e.Value(), 15, 1e-12) {
		t.Fatalf("after 20: %v", e.Value())
	}
}

func TestEWMAClampsAlpha(t *testing.T) {
	e := NewEWMA(5)
	e.Add(1)
	e.Add(3)
	if e.Value() != 3 {
		t.Fatalf("alpha>1 should clamp to 1; got %v", e.Value())
	}
	e2 := NewEWMA(-1)
	e2.Add(1)
	e2.Add(2)
	if e2.Value() <= 1 || e2.Value() >= 2 {
		t.Fatalf("clamped alpha out of range: %v", e2.Value())
	}
}

func TestWindow(t *testing.T) {
	w := NewWindow(3)
	if w.Len() != 0 || w.Mean() != 0 {
		t.Fatal("fresh window not empty")
	}
	w.Add(1)
	w.Add(2)
	if w.Full() {
		t.Fatal("window full too early")
	}
	if !almost(w.Mean(), 1.5, 1e-12) {
		t.Fatalf("Mean = %v", w.Mean())
	}
	w.Add(3)
	w.Add(4) // evicts 1
	if !w.Full() {
		t.Fatal("window should be full")
	}
	if !almost(w.Mean(), 3, 1e-12) {
		t.Fatalf("Mean after eviction = %v", w.Mean())
	}
	vals := w.Values()
	want := []float64{2, 3, 4}
	for i, v := range want {
		if vals[i] != v {
			t.Fatalf("Values = %v, want %v", vals, want)
		}
	}
	w.Reset()
	if w.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestWindowMinCapacity(t *testing.T) {
	w := NewWindow(0)
	w.Add(5)
	w.Add(6)
	if w.Len() != 1 || w.Mean() != 6 {
		t.Fatalf("capacity-clamped window misbehaves: len=%d mean=%v", w.Len(), w.Mean())
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 1},
		{1, 10},
		{0.5, 5.5},
		{0.25, 3.25},
		{-1, 1},
		{2, 10},
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); !almost(got, tt.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile not zero")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestQuantileMonotone(t *testing.T) {
	check := func(seed int64) bool {
		xs := make([]float64, 0, 21)
		v := float64(seed % 97)
		for i := 0; i < 21; i++ {
			v = v*1.3 + float64(i) - 10
			xs = append(xs, v)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			cur := Quantile(xs, q)
			if cur < prev-1e-9 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	s := Summarize(xs)
	if s.Count != 5 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("bad summary %+v", s)
	}
	if !almost(s.Mean, 3, 1e-12) || !almost(s.P50, 3, 1e-12) {
		t.Fatalf("bad central stats %+v", s)
	}
	if s.P95 < s.P90 || s.P99 < s.P95 || s.Max < s.P99 {
		t.Fatalf("percentiles not ordered: %+v", s)
	}
	if (Summarize(nil) != Summary{}) {
		t.Fatal("empty summary not zero")
	}
}

func TestRelChange(t *testing.T) {
	tests := []struct {
		cur, ref, want float64
	}{
		{13, 10, 0.3},
		{7, 10, 0.3},
		{10, 10, 0},
		{5, 0, 0},
		{-13, -10, 0.3},
	}
	for _, tt := range tests {
		if got := RelChange(tt.cur, tt.ref); !almost(got, tt.want, 1e-12) {
			t.Errorf("RelChange(%v,%v) = %v, want %v", tt.cur, tt.ref, got, tt.want)
		}
	}
}
