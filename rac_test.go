package rac_test

import (
	"bytes"
	"context"
	"testing"

	"github.com/rac-project/rac"
)

func TestPublicAPISurface(t *testing.T) {
	space := rac.DefaultSpace()
	if space.Len() != 8 {
		t.Fatalf("default space has %d parameters", space.Len())
	}
	if len(rac.Contexts()) != 6 {
		t.Fatal("Table 2 contexts missing")
	}
	if len(rac.FigureIDs()) != 10 {
		t.Fatal("figure ids missing")
	}
	if rac.DefaultOptions().SwitchThreshold != 5 {
		t.Fatal("paper defaults not exposed")
	}
}

func TestEndToEndThroughPublicAPI(t *testing.T) {
	ctx, err := rac.ContextByName("context-2")
	if err != nil {
		t.Fatal(err)
	}
	ctx.Workload.Clients = 150 // smaller population for a fast test

	sys, err := rac.NewSimulatedSystem(rac.SimulatedOptions{
		Context:        ctx,
		Seed:           1,
		SettleSeconds:  5,
		MeasureSeconds: 30,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Policy from the analytic surface.
	analytic, err := rac.NewAnalyticSystem(rac.AnalyticOptions{Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	policy, err := rac.LearnPolicy(ctx.Name, sys.Space(), rac.SystemSampler(analytic),
		rac.InitOptions{CoarseLevels: 3})
	if err != nil {
		t.Fatal(err)
	}

	agent, err := rac.NewAgent(sys, rac.AgentOptions{Policy: policy, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		step, err := agent.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if step.MeanRT <= 0 || step.Iteration != i+1 {
			t.Fatalf("step %+v", step)
		}
	}

	// Baselines construct and run through the same interface.
	for _, mk := range []func() (rac.Tuner, error){
		func() (rac.Tuner, error) { return rac.NewStaticAgent(sys, rac.DefaultOptions()) },
		func() (rac.Tuner, error) { return rac.NewTrialAndErrorAgent(sys, rac.DefaultOptions()) },
		func() (rac.Tuner, error) { return rac.NewHillClimbAgent(sys, rac.DefaultOptions()) },
	} {
		tuner, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tuner.Step(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestContextControlsThroughPublicAPI(t *testing.T) {
	ctx1, _ := rac.ContextByName("context-1")
	ctx1.Workload.Clients = 100
	sys, err := rac.NewSimulatedSystem(rac.SimulatedOptions{
		Context:        ctx1,
		Seed:           3,
		SettleSeconds:  5,
		MeasureSeconds: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx3, _ := rac.ContextByName("context-3")
	ctx3.Workload.Clients = 100
	if err := rac.ApplyContext(sys, ctx3); err != nil {
		t.Fatal(err)
	}
	if sys.AppLevel() != rac.Level3 {
		t.Fatal("context not applied")
	}
}

func TestApproxAgentThroughPublicAPI(t *testing.T) {
	ctx, err := rac.ContextByName("context-2")
	if err != nil {
		t.Fatal(err)
	}
	ctx.Workload.Clients = 120
	sys, err := rac.NewSimulatedSystem(rac.SimulatedOptions{
		Context:        ctx,
		Seed:           2,
		SettleSeconds:  5,
		MeasureSeconds: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	agent, err := rac.NewApproxAgent(sys, rac.DefaultOptions(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		res, err := agent.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.MeanRT <= 0 {
			t.Fatalf("step %+v", res)
		}
	}
}

func TestPolicyPersistenceThroughPublicAPI(t *testing.T) {
	space := rac.DefaultSpace()
	ctx, err := rac.ContextByName("context-1")
	if err != nil {
		t.Fatal(err)
	}
	analytic, err := rac.NewAnalyticSystem(rac.AnalyticOptions{Space: space, Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	policy, err := rac.LearnPolicy("persist-api", space, rac.SystemSampler(analytic),
		rac.InitOptions{CoarseLevels: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := policy.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := rac.LoadPolicy(&buf, space)
	if err != nil {
		t.Fatal(err)
	}
	probe := space.DefaultConfig()
	if loaded.PredictRT(probe) != policy.PredictRT(probe) {
		t.Fatal("prediction changed across save/load")
	}
}

func TestConfigFeaturesThroughPublicAPI(t *testing.T) {
	space := rac.DefaultSpace()
	feats, dim := rac.ConfigFeatures(space)
	if dim != 1+2*space.Len() {
		t.Fatalf("dim %d", dim)
	}
	q, err := rac.NewLinearQ(feats, dim, 3)
	if err != nil {
		t.Fatal(err)
	}
	if q.Dim() != dim {
		t.Fatal("dim mismatch")
	}
	if _, err := rac.NewApproxLearner(q, rac.DefaultOptions().Online, 1); err != nil {
		t.Fatal(err)
	}
}
