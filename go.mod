module github.com/rac-project/rac

go 1.22
