// Package rac is a reproduction of "A Reinforcement Learning Approach to
// Online Web Systems Auto-configuration" (Bu, Rao, Xu — ICDCS 2009): a
// Q-learning agent (RAC) that tunes the performance-critical configuration
// parameters of a multi-tier web system online, adapting to both workload
// changes and VM resource reallocation.
//
// The package re-exports the project's public API:
//
//   - the configuration space of paper Table 1 (DefaultSpace, Config, Action),
//   - systems to tune: a discrete-time simulator of the paper's
//     Apache/Tomcat/MySQL testbed (NewSimulatedSystem), an analytic queueing
//     surface (NewAnalyticSystem), and a live HTTP stack (NewLiveSystem),
//   - the RAC agent with policy initialization and online learning
//     (LearnPolicy, NewAgent), plus the paper's baselines,
//   - the experiment harness that regenerates every figure of the paper's
//     evaluation (NewHarness).
//
// Quick start:
//
//	sys, _ := rac.NewSimulatedSystem(rac.SimulatedOptions{Seed: 1})
//	policy, _ := rac.LearnPolicy("ctx", sys.Space(), sampler, rac.InitOptions{})
//	agent, _ := rac.NewAgent(sys, rac.AgentOptions{Policy: policy})
//	for i := 0; i < 25; i++ {
//	    step, _ := agent.Step(context.Background())
//	    fmt.Printf("iter %d: rt=%.3fs\n", step.Iteration, step.MeanRT)
//	}
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package rac

import (
	"context"
	"io"

	"github.com/rac-project/rac/internal/bench"
	"github.com/rac-project/rac/internal/capacity"
	"github.com/rac-project/rac/internal/config"
	"github.com/rac-project/rac/internal/core"
	"github.com/rac-project/rac/internal/faults"
	"github.com/rac-project/rac/internal/fleet"
	"github.com/rac-project/rac/internal/httpd"
	"github.com/rac-project/rac/internal/loadgen"
	"github.com/rac-project/rac/internal/mdp"
	"github.com/rac-project/rac/internal/sim"
	"github.com/rac-project/rac/internal/system"
	"github.com/rac-project/rac/internal/telemetry"
	"github.com/rac-project/rac/internal/tpcw"
	"github.com/rac-project/rac/internal/vmenv"
	"github.com/rac-project/rac/internal/webtier"
	"github.com/rac-project/rac/internal/workload"
)

// Configuration space (paper Table 1).
type (
	// Space is the discrete configuration lattice the agent searches.
	Space = config.Space
	// Config is one point of the lattice: a value per parameter.
	Config = config.Config
	// Param identifies one of the eight tunable parameters.
	Param = config.Param
	// ParamDef describes one parameter's lattice and default.
	ParamDef = config.Def
	// Action is a one-step reconfiguration (increase/decrease/keep).
	Action = config.Action
)

// The eight parameters of paper Table 1, plus the two SLO admission-gate
// parameters of the extended lattice.
const (
	MaxClients       = config.MaxClients
	KeepAliveTimeout = config.KeepAliveTimeout
	MinSpareServers  = config.MinSpareServers
	MaxSpareServers  = config.MaxSpareServers
	MaxThreads       = config.MaxThreads
	SessionTimeout   = config.SessionTimeout
	MinSpareThreads  = config.MinSpareThreads
	MaxSpareThreads  = config.MaxSpareThreads
	AdmitConcurrency = config.AdmitConcurrency
	AdmitQueue       = config.AdmitQueue
	// CapacityLevel is the elastic-capacity lattice parameter (a VM ordinal,
	// 1 = Level-3 … 3 = Level-1), interpreted by the capacity decorator.
	CapacityLevel = config.CapacityLevel
)

// DefaultSpace returns the eight-parameter space of paper Table 1.
func DefaultSpace() *Space { return config.Default() }

// AdmissionSpace returns the ten-parameter space: Table 1 plus the SLO
// admission gate's concurrency and queue caps, so Q-learning tunes the gate
// alongside the web-tier knobs.
func AdmissionSpace() *Space { return config.WithAdmission() }

// CapacitySpace returns the nine-parameter space: Table 1 plus the elastic
// CapacityLevel ordinal, so Q-learning trades VM capacity against the
// software knobs in one lattice (pair with WrapCapacity and
// Options.CapacityCost).
func CapacitySpace() *Space { return config.WithCapacity() }

// Workload model (TPC-W).
type (
	// Mix is a TPC-W traffic mix.
	Mix = tpcw.Mix
	// Workload pairs a mix with an emulated-browser population.
	Workload = tpcw.Workload
)

// The three TPC-W mixes.
const (
	Browsing = tpcw.Browsing
	Shopping = tpcw.Shopping
	Ordering = tpcw.Ordering
)

// VM environment.
type Level = vmenv.Level

// The paper's three VM resource levels.
var (
	Level1 = vmenv.Level1
	Level2 = vmenv.Level2
	Level3 = vmenv.Level3
)

// LevelOrdinal maps a VM level to its capacity ordinal (1 = Level-3 …
// 3 = Level-1), the unit the CapacityLevel lattice parameter moves in.
func LevelOrdinal(l Level) int { return vmenv.Ordinal(l) }

// LevelByOrdinal is the inverse of LevelOrdinal.
func LevelByOrdinal(n int) (Level, error) { return vmenv.ByOrdinal(n) }

// Systems.
type (
	// System is what agents tune: apply a configuration, measure one
	// interval of application-level performance.
	System = system.System
	// Adjustable is the experiment driver's control surface for context
	// changes (traffic and VM reallocation).
	Adjustable = system.Adjustable
	// Metrics is one interval's measurement.
	Metrics = system.Metrics
	// Context is a workload × VM-level combination (paper Table 2).
	Context = system.Context
	// SimulatedOptions configure NewSimulatedSystem.
	SimulatedOptions = system.SimulatedOptions
	// AnalyticOptions configure NewAnalyticSystem.
	AnalyticOptions = system.AnalyticOptions
	// SimulatedSystem is the discrete-time testbed simulation.
	SimulatedSystem = system.Simulated
	// AnalyticSystem is the queueing-model surface.
	AnalyticSystem = system.Analytic
)

// NewSimulatedSystem builds the simulated three-tier website.
func NewSimulatedSystem(opts SimulatedOptions) (*SimulatedSystem, error) {
	return system.NewSimulated(opts)
}

// NewAnalyticSystem builds the analytic (MVA) website surface.
func NewAnalyticSystem(opts AnalyticOptions) (*AnalyticSystem, error) {
	return system.NewAnalytic(opts)
}

// Contexts returns the six system contexts of paper Table 2.
func Contexts() []Context { return system.Table2() }

// ContextByName returns a paper context ("context-1" … "context-6").
func ContextByName(name string) (Context, error) { return system.ContextByName(name) }

// ApplyContext drives an adjustable system into a context (traffic + level).
func ApplyContext(sys Adjustable, ctx Context) error { return system.ApplyContext(sys, ctx) }

// The RAC agent and its components.
type (
	// Options are the agent's hyper-parameters (paper defaults via
	// DefaultOptions).
	Options = core.Options
	// AgentOptions configure NewAgent.
	AgentOptions = core.AgentOptions
	// Agent is the RAC online agent (paper Algorithm 3).
	Agent = core.Agent
	// StepResult reports one trial-and-error iteration.
	StepResult = core.StepResult
	// Tuner is the common interface of RAC and the baselines.
	Tuner = core.Tuner
	// Policy is an initial policy learned offline (paper Algorithm 2).
	Policy = core.Policy
	// PolicyStore holds per-context initial policies for adaptive switching.
	PolicyStore = core.PolicyStore
	// InitOptions configure LearnPolicy.
	InitOptions = core.InitOptions
	// Sampler measures one configuration during policy initialization.
	Sampler = core.Sampler
	// StreamSampler measures one configuration with a dedicated pre-split
	// RNG stream, so InitOptions.Procs can fan the coarse sweep out without
	// changing results.
	StreamSampler = core.StreamSampler
	// RLParams are the tabular-learning hyper-parameters (α, γ, ε).
	RLParams = mdp.Params
	// LinearQ is a linear value-function approximator — the paper's §7
	// future-work alternative to the tabular Q-table.
	LinearQ = mdp.LinearQ
	// ApproxLearner performs gradient SARSA on a LinearQ.
	ApproxLearner = mdp.ApproxLearner
	// Resilience is the agent's fault-handling policy: retry/backoff,
	// invalid-measurement rejection, and rollback-to-safe.
	Resilience = core.Resilience
)

// DefaultOptions returns the paper's hyper-parameters.
func DefaultOptions() Options { return core.DefaultOptions() }

// DefaultResilience returns the fault-handling profile used by the
// fault-injection experiments (retries, rejection, rollback all enabled).
func DefaultResilience() Resilience { return core.DefaultResilience() }

// NewAgent builds a RAC agent tuning the given system.
func NewAgent(sys System, opts AgentOptions) (*Agent, error) { return core.NewAgent(sys, opts) }

// LearnPolicy runs policy initialization (paper Algorithm 2) for one system
// context: coarse grouped sampling, polynomial-regression prediction, and
// offline RL over the group lattice.
func LearnPolicy(name string, space *Space, sample Sampler, opts InitOptions) (*Policy, error) {
	return core.LearnPolicy(name, space, sample, opts)
}

// LearnPolicyStream is LearnPolicy for samplers that consume randomness:
// each coarse configuration is measured with its own RNG stream split before
// dispatch, so opts.Procs parallelism cannot change the trained policy.
func LearnPolicyStream(name string, space *Space, sample StreamSampler, opts InitOptions) (*Policy, error) {
	return core.LearnPolicyStream(name, space, sample, opts)
}

// NewPolicyStore builds a store of initial policies.
func NewPolicyStore(policies ...*Policy) *PolicyStore { return core.NewPolicyStore(policies...) }

// LoadPolicy reads a policy previously written with Policy.Save, binding it
// to the configuration space it was trained on.
func LoadPolicy(r io.Reader, space *Space) (*Policy, error) { return core.LoadPolicy(r, space) }

// NewLinearQ builds a linear action-value approximator over the feature
// basis returned by ConfigFeatures (or any custom extractor).
func NewLinearQ(features mdp.Features, dim, actions int) (*LinearQ, error) {
	return mdp.NewLinearQ(features, dim, actions)
}

// NewApproxLearner wraps a LinearQ with gradient SARSA updates.
func NewApproxLearner(q *LinearQ, params RLParams, seed uint64) (*ApproxLearner, error) {
	return mdp.NewApproxLearner(q, params, sim.NewRNG(seed|1))
}

// ConfigFeatures returns a quadratic feature basis over the configuration
// space (bias, normalized values, squares) and its dimensionality, for use
// with NewLinearQ.
func ConfigFeatures(space *Space) (mdp.Features, int) {
	f, dim := config.Features(space)
	return f, dim
}

// SystemSampler adapts a System into a policy-initialization Sampler
// (apply + measure per probed configuration). Offline sampling has no caller
// to cancel it, so each probe runs under context.Background().
func SystemSampler(sys System) Sampler {
	return func(cfg Config) (float64, error) {
		if err := sys.Apply(context.Background(), cfg); err != nil {
			return 0, err
		}
		m, err := sys.Measure(context.Background())
		if err != nil {
			return 0, err
		}
		return m.MeanRT, nil
	}
}

// Baselines.

// NewStaticAgent wraps a system without ever reconfiguring it (the paper's
// static default baseline).
func NewStaticAgent(sys System, opts Options) (Tuner, error) {
	return core.NewStaticAgent(sys, opts)
}

// NewTrialAndErrorAgent builds the paper's coordinate-descent baseline.
func NewTrialAndErrorAgent(sys System, opts Options) (Tuner, error) {
	return core.NewTrialAndErrorAgent(sys, opts)
}

// NewHillClimbAgent builds the hill-climbing baseline (an extension beyond
// the paper's two baselines).
func NewHillClimbAgent(sys System, opts Options) (Tuner, error) {
	return core.NewHillClimbAgent(sys, opts)
}

// NewApproxAgent builds the function-approximation variant of the RAC agent
// (the paper's §7 future-work direction): online SARSA over per-action
// linear models of the configuration features instead of a tabular Q-table.
func NewApproxAgent(sys System, opts Options, seed uint64) (Tuner, error) {
	return core.NewApproxAgent(sys, opts, seed)
}

// Live stack.
type (
	// LiveServer is the real in-process three-tier HTTP application.
	LiveServer = httpd.Server
	// LiveSystem adapts the live server + load generator to System.
	LiveSystem = httpd.Live
	// LoadDriver generates TPC-W-style HTTP load.
	LoadDriver = loadgen.Driver
	// LoadOptions configure a LoadDriver: closed-loop emulated browsers by
	// default, the open-loop paced engine when Rate is set.
	LoadOptions = loadgen.Options
	// LoadArrival selects the open-loop arrival process.
	LoadArrival = loadgen.Arrival
	// ServerParams are the web-system knobs in natural units.
	ServerParams = webtier.Params
)

// The open-loop arrival processes.
const (
	ArrivalPoisson = loadgen.ArrivalPoisson
	ArrivalUniform = loadgen.ArrivalUniform
)

// TimeScale is the ×100 compression between paper time and wall time on the
// live stack: one wall-clock second of measurement covers 100 paper seconds,
// so a 1.5 s interval is the paper's "5-minute" measurement window.
const TimeScale = httpd.TimeScale

// Load-generator validation sentinels; constructor errors wrap exactly one.
var (
	ErrBadLoadURL      = loadgen.ErrBadURL
	ErrBadLoadWorkload = loadgen.ErrBadWorkload
	ErrBadLoadRate     = loadgen.ErrBadRate
	ErrBadLoadArrival  = loadgen.ErrBadArrival
	ErrBadLoadShards   = loadgen.ErrBadShards
	ErrBadLoadInFlight = loadgen.ErrBadInFlight
	ErrBadLoadTimeout  = loadgen.ErrBadTimeout
)

// DefaultServerParams returns the Table 1 defaults in natural units.
func DefaultServerParams() ServerParams { return webtier.DefaultParams() }

// NewLiveServer builds the real three-tier stack.
func NewLiveServer(params ServerParams, level Level) (*LiveServer, error) {
	return httpd.NewServer(params, level)
}

// NewLoadDriver builds a closed-loop HTTP load generator against a base URL
// — the historical constructor, kept source-compatible as a thin wrapper
// over NewLoadDriverOptions.
func NewLoadDriver(base string, w Workload, seed uint64) (*LoadDriver, error) {
	return loadgen.New(loadgen.Options{BaseURL: base, Workload: w, Seed: seed})
}

// NewLoadDriverOptions builds a load generator from full options (open-loop
// rate, arrival process, shards, admission bound).
func NewLoadDriverOptions(opts LoadOptions) (*LoadDriver, error) {
	return loadgen.New(opts)
}

// NewLiveSystem adapts a started live server and a load driver to the System
// interface so the agent can tune real traffic.
func NewLiveSystem(space *Space, server *LiveServer, driver *LoadDriver, initial Config) (*LiveSystem, error) {
	return httpd.NewLive(space, server, driver, initial)
}

// ParamsFromConfig converts a lattice configuration to natural units.
func ParamsFromConfig(space *Space, cfg Config) (ServerParams, error) {
	return webtier.ParamsFromConfig(space, cfg)
}

// Experiments.
type (
	// Harness regenerates the paper's evaluation figures.
	Harness = bench.Harness
	// HarnessOptions configure NewHarness.
	HarnessOptions = bench.Options
	// Figure is one reproduced experiment result.
	Figure = bench.Figure
	// Series is one labeled line of a figure.
	Series = bench.Series
)

// NewHarness builds the experiment harness.
func NewHarness(opts HarnessOptions) *Harness { return bench.New(opts) }

// Fault injection (package internal/faults): a deterministic, RNG-seeded
// fault layer that wraps any System and subjects the agent to apply/measure
// failures, latency spikes, error bursts, capacity drops and measurement
// noise, scheduled by a JSON-loadable scenario.
type (
	// FaultScenario is a declarative, replayable fault schedule.
	FaultScenario = faults.Scenario
	// FaultRule schedules one fault kind over a window of intervals.
	FaultRule = faults.Rule
	// FaultKind names an injectable fault type.
	FaultKind = faults.Kind
	// FaultySystem wraps a System and injects a scenario's faults.
	FaultySystem = faults.System
	// FaultOptions configure NewFaultySystem.
	FaultOptions = faults.Options
	// FaultInjection records one fired fault.
	FaultInjection = faults.Injection
)

// NewFaultySystem wraps sys with a fault-injection layer replaying the
// scenario in opts.
func NewFaultySystem(sys System, opts FaultOptions) (*FaultySystem, error) {
	return faults.New(sys, opts)
}

// LoadFaultScenario reads and validates a JSON fault scenario from a file
// (see examples/faults_basic.json).
func LoadFaultScenario(path string) (FaultScenario, error) { return faults.LoadFile(path) }

// FaultKinds returns every injectable fault kind in stable order.
func FaultKinds() []FaultKind { return faults.Kinds() }

// FigureIDs returns the reproducible figure identifiers in paper order.
func FigureIDs() []string { return bench.FigureIDs() }

// Elastic capacity control (package internal/capacity): the VM provisioning
// level becomes an actuator alongside the paper's software knobs. A
// deterministic saturation analyzer watches each interval's offered/completed
// counts and latency for the capacity knee; a decorator wraps any adjustable
// system with a provisioning-delayed scaler driven by lattice CapacityLevel
// moves (CapacitySpace) and, optionally, by analyzer verdicts between
// retrains (the fast scale path). Capacity consumption is priced into the
// agent's reward via Options.CapacityCost.
type (
	// CapacitySystem decorates an adjustable system with elastic capacity.
	CapacitySystem = capacity.System
	// CapacityOptions configure WrapCapacity.
	CapacityOptions = capacity.Options
	// CapacityScalable is what the decorator wraps: a tunable system whose
	// VM level a driver can change.
	CapacityScalable = capacity.Scalable
	// CapacityAnalyzer is the deterministic saturation detector.
	CapacityAnalyzer = capacity.Analyzer
	// CapacityConfig calibrates the analyzer.
	CapacityConfig = capacity.Config
	// CapacityObservation is one interval's saturation-relevant counts.
	CapacityObservation = capacity.Observation
	// CapacityDecision is one analyzer verdict with its evidence.
	CapacityDecision = capacity.Decision
	// CapacityVerdict is the analyzer's stance (stable/saturated/headroom).
	CapacityVerdict = capacity.Verdict
)

// WrapCapacity decorates an adjustable system with elastic capacity control.
func WrapCapacity(sys CapacityScalable, opts CapacityOptions) (*CapacitySystem, error) {
	return capacity.Wrap(sys, opts)
}

// NewCapacityAnalyzer builds a saturation analyzer with the given calibration.
func NewCapacityAnalyzer(cfg CapacityConfig) (*CapacityAnalyzer, error) {
	return capacity.NewAnalyzer(cfg)
}

// DefaultCapacityConfig returns the analyzer calibration the experiments use,
// referenced to the given SLA.
func DefaultCapacityConfig(slaSeconds float64) CapacityConfig {
	return capacity.DefaultConfig(slaSeconds)
}

// Workload engine (package internal/workload): composable, JSON-loadable
// scenarios (phases with rate/population/mix, sinusoid/ramp/spike modulation,
// mix drift) compiled into deterministic arrival schedules, plus a trace
// format recording exact arrivals for bit-identical replay. A compiled
// schedule or loaded trace plugs into LoadOptions.Schedule to drive the
// open-loop engine, or into a WorkloadSequencer to drive per-interval
// context changes on simulated systems.
type (
	// WorkloadScenario is the declarative scenario spec.
	WorkloadScenario = workload.Scenario
	// WorkloadPhase is one ordered segment of a scenario.
	WorkloadPhase = workload.Phase
	// WorkloadModulation is one load-shaping operator on a phase.
	WorkloadModulation = workload.Modulation
	// WorkloadSchedule is a compiled scenario: a time-varying arrival source.
	WorkloadSchedule = workload.Schedule
	// WorkloadSource is the common interface of schedules and traces.
	WorkloadSource = workload.Source
	// WorkloadTrace is a recorded arrival stream for exact replay.
	WorkloadTrace = workload.Trace
	// WorkloadSequencer walks a source one measurement interval at a time.
	WorkloadSequencer = workload.Sequencer
	// WorkloadInterval is one interval's offered load and workload.
	WorkloadInterval = workload.Interval
)

// LoadWorkloadScenario reads and validates a JSON scenario from a file (see
// examples/scenarios/).
func LoadWorkloadScenario(path string) (WorkloadScenario, error) { return workload.LoadFile(path) }

// CompileWorkload compiles a scenario into a deterministic schedule.
func CompileWorkload(sc WorkloadScenario) (*WorkloadSchedule, error) { return workload.Compile(sc) }

// WorkloadLibrary returns the built-in scenario library by name (diurnal,
// flashcrowd, mixdrift, ramp, steady).
func WorkloadLibrary() map[string]WorkloadScenario { return workload.Library() }

// ResolveWorkloadScenario resolves a library scenario name or a JSON scenario
// file path — the shared spelling of every -scenario flag and config field.
func ResolveWorkloadScenario(arg string) (WorkloadScenario, error) { return workload.Resolve(arg) }

// NewWorkloadSequencer walks a compiled schedule or trace one measurement
// interval at a time (intervalSeconds 0 uses the scenario's interval).
func NewWorkloadSequencer(src WorkloadSource, intervalSeconds float64) *WorkloadSequencer {
	return workload.NewSequencer(src, intervalSeconds)
}

// RecordWorkloadTrace materializes the exact arrivals a seeded driver would
// offer across the given number of intervals, for replay via LoadOptions.
func RecordWorkloadTrace(src WorkloadSource, seed uint64, intervalSeconds float64, intervals int) (*WorkloadTrace, error) {
	return workload.RecordTrace(src, seed, intervalSeconds, intervals)
}

// LoadWorkloadTrace reads a recorded trace (JSONL) from a file.
func LoadWorkloadTrace(path string) (*WorkloadTrace, error) { return workload.LoadTraceFile(path) }

// Observability (package internal/telemetry): a dependency-free metrics
// registry plus a decision-trace ring. The live server exposes its registry
// at /metrics (Prometheus text format) and an attached trace at
// /admin/trace; the agent, load driver and harness register instruments on
// the same registry.
type (
	// Telemetry is a registry of counters, gauges and latency histograms.
	Telemetry = telemetry.Registry
	// TelemetrySnapshot is a JSON-able point-in-time copy of a registry.
	TelemetrySnapshot = telemetry.Snapshot
	// Trace is a fixed-capacity ring buffer of agent decision events.
	Trace = telemetry.Trace
	// TraceEvent is one structured decision record (step, retrain, or
	// policy switch).
	TraceEvent = telemetry.Event
	// TraceEventKind discriminates decision-trace entries.
	TraceEventKind = telemetry.EventKind
)

// TraceKindWorkload marks the per-interval workload events scenario-driven
// runs interleave into the decision trace, so load drift can be correlated
// with the agent's switches and rollbacks.
const TraceKindWorkload = telemetry.KindWorkload

// TraceKindCapacity marks the capacity decorator's scale decisions and
// applied scales in the decision trace.
const TraceKindCapacity = telemetry.KindCapacity

// NewTelemetry returns an empty metrics registry.
func NewTelemetry() *Telemetry { return telemetry.NewRegistry() }

// NewTrace returns a decision-trace ring holding the most recent capacity
// events.
func NewTrace(capacity int) *Trace { return telemetry.NewTrace(capacity) }

// Multi-tenant fleet (package internal/fleet): a control plane that runs one
// RAC agent per managed web system on the shared worker pool, checkpoints
// learned state to disk for warm restarts, and warm-starts new tenants from a
// registry of context-matched policies. cmd/racd wraps it in a daemon; the
// admin lifecycle API (Fleet.Handler) mounts next to /metrics on any mux.
type (
	// Fleet is the multi-tenant control plane.
	Fleet = fleet.Fleet
	// FleetOptions configure NewFleet.
	FleetOptions = fleet.Options
	// TenantSpec declares one managed tenant; racd configs hold a list of
	// these in JSON.
	TenantSpec = fleet.TenantSpec
	// Tenant is one managed system plus the RAC agent tuning it.
	Tenant = fleet.Tenant
	// TenantStatus is the admin API's per-tenant summary.
	TenantStatus = fleet.TenantStatus
	// TenantState is a tenant lifecycle state (starting → running → paused →
	// draining → stopped, or failed).
	TenantState = fleet.State
	// FleetView is the admin API's fleet-wide summary (GET /admin/v1/fleet).
	FleetView = fleet.FleetView
	// TenantPage is one page of the paginated tenant listing
	// (GET /admin/v1/tenants?offset=&limit=).
	TenantPage = fleet.TenantPage
	// AdmitResult is one entry of a bulk-admission response
	// (POST /admin/v1/tenants).
	AdmitResult = fleet.AdmitResult
	// ShardStatus is one scheduling shard's snapshot (GET /admin/v1/shards).
	ShardStatus = fleet.ShardStatus
	// FleetCheckpoint is one tenant's persisted state snapshot.
	FleetCheckpoint = fleet.Checkpoint
	// FleetSystemBuilder lets a daemon plug extra backends ("live") into the
	// fleet's tenant admission.
	FleetSystemBuilder = fleet.SystemBuilder
	// AgentState is the serializable snapshot of a RAC agent mid-run: both
	// RNG streams, the Q-table, the retraining window and the SLA bookkeeping.
	AgentState = core.AgentState
)

// ErrCorruptCheckpoint reports a checkpoint file that failed validation
// (magic, version, length or CRC); the fleet skips such files and falls back
// to the previous snapshot.
var ErrCorruptCheckpoint = fleet.ErrCorruptCheckpoint

// Fleet error sentinels: every fleet API error wraps exactly one, so callers
// branch with errors.Is instead of matching messages. The admin HTTP layer
// maps them onto status codes and stable error-code slugs.
var (
	// ErrFleetBadOptions marks an invalid FleetOptions field.
	ErrFleetBadOptions = fleet.ErrBadOptions
	// ErrFleetBadShards marks an invalid shard count.
	ErrFleetBadShards = fleet.ErrBadShards
	// ErrFleetBadSpec marks an invalid TenantSpec.
	ErrFleetBadSpec = fleet.ErrBadSpec
	// ErrFleetDuplicateTenant marks admission of a name the fleet already holds.
	ErrFleetDuplicateTenant = fleet.ErrDuplicateTenant
	// ErrFleetUnknownTenant marks an operation on an unadmitted name.
	ErrFleetUnknownTenant = fleet.ErrUnknownTenant
	// ErrFleetBadTransition marks a lifecycle move the tenant FSM forbids.
	ErrFleetBadTransition = fleet.ErrBadTransition
	// ErrFleetNoPolicy marks a context key with no stored policy.
	ErrFleetNoPolicy = fleet.ErrNoPolicy
	// ErrFleetCheckpointsDisabled marks a checkpoint request on a fleet built
	// without a checkpoint directory.
	ErrFleetCheckpointsDisabled = fleet.ErrCheckpointsDisabled
)

// NewFleet builds an empty fleet control plane.
func NewFleet(opts FleetOptions) (*Fleet, error) { return fleet.New(opts) }

// ReadFleetCheckpoint decodes one checkpoint file, verifying its envelope.
func ReadFleetCheckpoint(path string) (*FleetCheckpoint, error) {
	return fleet.ReadCheckpointFile(path)
}

// FleetContextKey renders the registry key a system context maps to.
func FleetContextKey(ctx Context) string { return fleet.ContextKey(ctx) }

// LoadAgentState reads an agent snapshot previously written with
// AgentState.Save (for example by racagent -snapshot).
func LoadAgentState(r io.Reader) (*AgentState, error) { return core.LoadAgentState(r) }
