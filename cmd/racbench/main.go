// Command racbench regenerates the paper's evaluation figures on the
// simulated testbed.
//
// Examples:
//
//	racbench -fig fig5            # one figure, rendered as a table
//	racbench -all -csv out/       # all figures, also written as CSV
//	racbench -all -procs 4        # independent figures generated in parallel
//	racbench -fig fig2 -quick     # fast low-fidelity pass
//	racbench -faults examples/faults_basic.json -quick
//	                              # recovery-under-faults figure
//	racbench -fig load -quick     # open-loop data-plane throughput figure
//	                              # (real HTTP over wall clock; not in -all)
//	racbench -fig diurnal -quick  # adaptation under the built-in 24 h
//	                              # diurnal workload scenario (not in -all)
//	racbench -scenario examples/scenarios/flashcrowd.json -quick
//	                              # same figure for any scenario file
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/rac-project/rac/internal/bench"
	"github.com/rac-project/rac/internal/faults"
	"github.com/rac-project/rac/internal/parallel"
	"github.com/rac-project/rac/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "racbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("racbench", flag.ContinueOnError)
	var (
		figID  = fs.String("fig", "", "figure to regenerate (fig1..fig10, or load for the data-plane throughput figure)")
		all    = fs.Bool("all", false, "regenerate every figure")
		seed   = fs.Uint64("seed", 1, "experiment seed")
		quick  = fs.Bool("quick", false, "low-fidelity fast mode")
		simPol = fs.Bool("simpolicy", false, "train initial policies by sampling the simulator (slow) instead of the analytic surface")
		csvDir = fs.String("csv", "", "also write each figure as CSV into this directory")
		procs  = fs.Int("procs", 0, "worker goroutines for sweeps and figure generation (0 = all CPUs, 1 = sequential; output is identical either way)")
		noCch  = fs.Bool("nocache", false, "disable the response-surface memo (A/B timing; figures are identical either way)")
		scen   = fs.String("faults", "", "render the recovery-under-faults figure for this JSON scenario instead of a paper figure")
		wlScen = fs.String("scenario", "", "render the workload-adaptation figure for this workload scenario: a library name (diurnal|flashcrowd|mixdrift|ramp|steady) or a JSON file (see examples/scenarios/); -fig diurnal is shorthand for -scenario diurnal")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*all && *figID == "" && *scen == "" && *wlScen == "" {
		return fmt.Errorf("pass -fig <id>, -all, -faults <scenario> or -scenario <workload> (ids: %v)", bench.FigureIDs())
	}

	h := bench.New(bench.Options{
		Seed:        *seed,
		Quick:       *quick,
		SimSampling: *simPol,
		Procs:       *procs,
		NoCache:     *noCch,
	})

	if *scen != "" {
		sc, err := faults.LoadFile(*scen)
		if err != nil {
			return err
		}
		start := time.Now()
		fig, err := h.FigFaults(sc)
		if err != nil {
			return err
		}
		if err := fig.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Printf("  (%s in %.1fs)\n", fig.ID, time.Since(start).Seconds())
		if *csvDir != "" {
			return writeCSV(*csvDir, fig)
		}
		return nil
	}
	if *wlScen != "" {
		sc, err := workload.Resolve(*wlScen)
		if err != nil {
			return err
		}
		start := time.Now()
		fig, err := h.FigWorkload(sc)
		if err != nil {
			return err
		}
		if err := fig.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Printf("  (%s in %.1fs)\n", fig.ID, time.Since(start).Seconds())
		if *csvDir != "" {
			return writeCSV(*csvDir, fig)
		}
		return nil
	}
	gens := h.Figures()

	ids := bench.FigureIDs()
	if !*all {
		if gens[*figID] == nil {
			return fmt.Errorf("unknown figure %q (ids: %v)", *figID, ids)
		}
		ids = []string{*figID}
	}

	// Figures are independent experiments; generate them on the pool and
	// render in paper order once all are in. Policy trainings shared between
	// figures are deduped by the harness cache.
	type generated struct {
		fig  *bench.Figure
		secs float64
	}
	results, err := parallel.Map(h.Parallel(), len(ids), func(i int) (generated, error) {
		start := time.Now()
		fig, err := gens[ids[i]]()
		if err != nil {
			return generated{}, fmt.Errorf("%s: %w", ids[i], err)
		}
		return generated{fig: fig, secs: time.Since(start).Seconds()}, nil
	})
	if err != nil {
		return err
	}

	for i, res := range results {
		if err := res.fig.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Printf("  (%s in %.1fs)\n\n", ids[i], res.secs)
		if *csvDir != "" {
			if err := writeCSV(*csvDir, res.fig); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeCSV(dir string, fig *bench.Figure) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, fig.ID+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fig.WriteCSV(f); err != nil {
		f.Close()
		return fmt.Errorf("write %s: %w", path, err)
	}
	return f.Close()
}
