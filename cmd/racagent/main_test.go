package main

import (
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"github.com/rac-project/rac"
)

func TestParseMix(t *testing.T) {
	for _, want := range []rac.Mix{rac.Browsing, rac.Shopping, rac.Ordering} {
		got, err := parseMix(want.String())
		if err != nil || got != want {
			t.Errorf("parseMix(%q) = %v, %v", want.String(), got, err)
		}
	}
	if _, err := parseMix("nope"); err == nil {
		t.Error("unknown mix accepted")
	}
}

func TestParseLevel(t *testing.T) {
	for _, want := range []rac.Level{rac.Level1, rac.Level2, rac.Level3} {
		got, err := parseLevel(want.Name)
		if err != nil || got != want {
			t.Errorf("parseLevel(%q) = %v, %v", want.Name, got, err)
		}
	}
	if _, err := parseLevel("Level-9"); err == nil {
		t.Error("unknown level accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-mix", "bogus", "-iters", "1"}); err == nil {
		t.Error("bogus mix accepted")
	}
	if err := run([]string{"-agent", "bogus", "-iters", "1"}); err == nil {
		t.Error("bogus agent accepted")
	}
	if err := run([]string{"-level", "bogus", "-iters", "1"}); err == nil {
		t.Error("bogus level accepted")
	}
	if err := run([]string{"-agent", "static", "-snapshot", "x.json"}); err == nil {
		t.Error("-snapshot with a baseline agent accepted")
	}
}

// TestSignalFinishesIntervalAndSnapshots interrupts a live run with a real
// SIGTERM: the agent must finish its in-flight interval, exit cleanly, and
// leave a loadable state snapshot behind.
func TestSignalFinishesIntervalAndSnapshots(t *testing.T) {
	path := filepath.Join(t.TempDir(), "agent.json")
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-iters", "40", "-interval", "150ms", "-clients", "10", "-snapshot", path})
	}()
	// Give the run time to boot the stack and install its signal handler
	// (the bookstore comes up in milliseconds; the first interval is 150ms).
	time.Sleep(700 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("interrupted run: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not stop after SIGTERM")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("no snapshot written: %v", err)
	}
	defer f.Close()
	st, err := rac.LoadAgentState(f)
	if err != nil {
		t.Fatalf("snapshot does not load: %v", err)
	}
	if st.Iteration < 1 {
		t.Fatalf("snapshot at iteration %d, want at least one finished interval", st.Iteration)
	}
}
