package main

import (
	"testing"

	"github.com/rac-project/rac"
)

func TestParseMix(t *testing.T) {
	for _, want := range []rac.Mix{rac.Browsing, rac.Shopping, rac.Ordering} {
		got, err := parseMix(want.String())
		if err != nil || got != want {
			t.Errorf("parseMix(%q) = %v, %v", want.String(), got, err)
		}
	}
	if _, err := parseMix("nope"); err == nil {
		t.Error("unknown mix accepted")
	}
}

func TestParseLevel(t *testing.T) {
	for _, want := range []rac.Level{rac.Level1, rac.Level2, rac.Level3} {
		got, err := parseLevel(want.Name)
		if err != nil || got != want {
			t.Errorf("parseLevel(%q) = %v, %v", want.Name, got, err)
		}
	}
	if _, err := parseLevel("Level-9"); err == nil {
		t.Error("unknown level accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-mix", "bogus", "-iters", "1"}); err == nil {
		t.Error("bogus mix accepted")
	}
	if err := run([]string{"-agent", "bogus", "-iters", "1"}); err == nil {
		t.Error("bogus agent accepted")
	}
	if err := run([]string{"-level", "bogus", "-iters", "1"}); err == nil {
		t.Error("bogus level accepted")
	}
}
