// Command racagent demonstrates the full pipeline against live HTTP traffic:
// it starts the in-process three-tier bookstore, aims a TPC-W-style load
// generator at it, and runs the RAC agent (or a baseline) for a number of
// iterations, printing every step. The time scale is compressed 100×, so an
// iteration's "5-minute" measurement interval takes ~1.5 s of wall clock.
//
// Examples:
//
//	racagent -iters 20
//	racagent -agent trial-and-error -clients 80 -mix ordering
//	racagent -level Level-3 -maxclients 50
//	racagent -faults examples/faults_basic.json -quick
//	racagent -snapshot agent.json   # ^C finishes the interval, then saves
//
// SIGINT/SIGTERM do not kill the run mid-measurement: the agent finishes its
// current interval, the summary is printed, and with -snapshot the learned
// state (policy name, Q-table, both RNG streams) is saved so a later run —
// or a fleet tenant — can resume from it.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"github.com/rac-project/rac"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "racagent:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("racagent", flag.ContinueOnError)
	var (
		iters      = fs.Int("iters", 20, "tuning iterations")
		clients    = fs.Int("clients", 60, "emulated browsers")
		mixName    = fs.String("mix", "shopping", "traffic mix")
		levelName  = fs.String("level", "Level-2", "app/db VM level")
		agentKind  = fs.String("agent", "rac", "agent: rac|static|trial-and-error|hillclimb")
		seed       = fs.Uint64("seed", 1, "seed")
		interval   = fs.Duration("interval", 1500*time.Millisecond, "wall-clock measurement interval")
		maxClients = fs.Int("maxclients", 50, "starting MaxClients (a poor default shows tuning)")
		telemetry  = fs.String("telemetry", "", "dump a telemetry snapshot (metrics + decision trace) at exit to this file, or - for stdout")
		traceCap   = fs.Int("tracecap", 512, "decision-trace ring capacity")
		procs      = fs.Int("procs", 0, "cap the OS threads running the in-process server, load generator and agent (0 = all CPUs)")
		faultsPath = fs.String("faults", "", "inject faults from this JSON scenario (see examples/faults_basic.json); enables the agent's resilience policy")
		quick      = fs.Bool("quick", false, "smoke-test sizing: 8 iterations, 300ms intervals, 20 browsers")
		snapshot   = fs.String("snapshot", "", "save the final agent state (policy + Q-table) to this file at exit (-agent rac only)")
		openLoop   = fs.Bool("open", false, "open-loop load: offer a fixed arrival schedule instead of emulated browsers (defaults -rate to 30)")
		rate       = fs.Float64("rate", 0, "open-loop offered load in paper-scale req/s (>0 implies -open; 0 keeps the closed loop)")
		scenario   = fs.String("scenario", "", "drive a time-varying workload scenario: a library name (diurnal|flashcrowd|mixdrift|ramp|steady) or a JSON file (see examples/scenarios/)")
		arrival    = fs.String("arrival", "", "open-loop arrival process: poisson (default) or uniform")
		shards     = fs.Int("shards", 0, "open-loop accounting shards (0 = default; results identical for any value)")
		inflight   = fs.Int("inflight", 0, "open-loop bound on concurrently outstanding requests (0 = default)")
		expQueue   = fs.Int("expqueue", 0, "experience-queue depth: 0 retrains inside each interval, n>0 overlaps Q-table retraining with the next interval's wait (-agent rac only; the learned state is identical either way)")
		admission  = fs.Bool("admission", false, "tune the SLO admission gate too: extend the lattice with AdmitConcurrency and AdmitQueue so Q-learning sets the gate's caps alongside the web-tier knobs")
		admitConc  = fs.Int("admitconc", 0, "starting AdmitConcurrency (requires -admission; 0 keeps the space default)")
		admitQueue = fs.Int("admitqueue", 0, "starting AdmitQueue (requires -admission; 0 keeps the space default)")
		capacityOn = fs.Bool("capacity", false, "make the VM level an actuator: extend the lattice with CapacityLevel, wrap the stack in the elastic capacity decorator, and fast-scale on saturation verdicts between retrains")
		capCost    = fs.Float64("capacity-cost", 0, "price capacity in the agent's reward, per VM-level·interval (requires -capacity; 0 leaves the level unpriced)")
		capDelay   = fs.Int("capacity-delay", 0, "scale-up provisioning delay in measurement intervals; scale-downs apply next interval (requires -capacity)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// A scenario replaces the fixed -rate: in the open loop the compiled
	// schedule paces the arrivals itself, in the closed loop a sequencer
	// re-applies each interval's workload before the agent steps.
	var sched *rac.WorkloadSchedule
	if *scenario != "" {
		sc, err := rac.ResolveWorkloadScenario(*scenario)
		if err != nil {
			return err
		}
		if *rate > 0 {
			return fmt.Errorf("-scenario drives the offered load; drop -rate")
		}
		sched, err = rac.CompileWorkload(sc)
		if err != nil {
			return err
		}
	}
	if *openLoop && *rate == 0 && sched == nil {
		*rate = 30
	}
	if *snapshot != "" && *agentKind != "rac" {
		return fmt.Errorf("-snapshot requires -agent rac (got %q)", *agentKind)
	}
	if *quick {
		*iters = 8
		*interval = 300 * time.Millisecond
		*clients = 20
	}
	if *procs > 0 {
		// Unlike the offline sweeps (racbench/racsim -procs), the live demo
		// is a single concurrent stack: the knob here bounds the scheduler,
		// trading tuning wall-clock for leaving cores to co-located work.
		runtime.GOMAXPROCS(*procs)
	}

	mix, err := parseMix(*mixName)
	if err != nil {
		return err
	}
	level, err := parseLevel(*levelName)
	if err != nil {
		return err
	}

	if (*admitConc > 0 || *admitQueue > 0) && !*admission {
		return fmt.Errorf("-admitconc/-admitqueue require -admission")
	}
	if (*capCost > 0 || *capDelay > 0) && !*capacityOn {
		return fmt.Errorf("-capacity-cost/-capacity-delay require -capacity")
	}
	if *capCost < 0 || *capDelay < 0 {
		return fmt.Errorf("-capacity-cost/-capacity-delay must be non-negative")
	}
	if *capacityOn && *admission {
		return fmt.Errorf("-capacity and -admission extend the lattice differently; pick one")
	}
	space := rac.DefaultSpace()
	if *admission {
		space = rac.AdmissionSpace()
	}
	if *capacityOn {
		space = rac.CapacitySpace()
	}
	start := space.DefaultConfig().With(space, rac.MaxClients, *maxClients)
	if *admitConc > 0 {
		start = start.With(space, rac.AdmitConcurrency, *admitConc)
	}
	if *admitQueue > 0 {
		start = start.With(space, rac.AdmitQueue, *admitQueue)
	}
	if *capacityOn {
		// Start the lattice's CapacityLevel at the -level the stack boots
		// with, so the agent's first step is not an implicit scale request.
		start = start.With(space, rac.CapacityLevel, rac.LevelOrdinal(level))
	}
	start, err = space.Clamp(start)
	if err != nil {
		return err
	}
	trace := rac.NewTrace(*traceCap)
	workload := rac.Workload{Mix: mix, Clients: *clients}
	load := rac.LoadOptions{
		Rate:           *rate,
		ArrivalProcess: rac.LoadArrival(*arrival),
		Shards:         *shards,
		MaxInFlight:    *inflight,
	}
	// Each wall-clock interval covers interval×TimeScale scenario seconds;
	// the sequencer walks the schedule at that pace, mirroring the open-loop
	// driver's own window cursor.
	var seq *rac.WorkloadSequencer
	if sched != nil {
		seq = rac.NewWorkloadSequencer(sched, interval.Seconds()*rac.TimeScale)
		workload = seq.At(0).Workload
		if *openLoop {
			load.Schedule = sched
		}
	}
	built, err := rac.BuildSystem(rac.SystemSpec{
		Backend:          "live",
		Space:            space,
		Initial:          start,
		Context:          rac.Context{Name: "racagent", Workload: workload, Level: level},
		Seed:             *seed,
		Interval:         *interval,
		Load:             load,
		Trace:            trace,
		Capacity:         *capacityOn,
		CapacityDelay:    *capDelay,
		CapacityFastPath: *capacityOn,
		CapacityAnalyzer: rac.DefaultCapacityConfig(rac.DefaultOptions().SLASeconds),
		FaultsPath:       *faultsPath,
	})
	if err != nil {
		return err
	}
	server, sys, faulty := built.Server, built.System, built.Faulty
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = server.Shutdown(ctx)
	}()
	switch {
	case sched != nil:
		loop := "closed loop"
		if *openLoop {
			loop = "open loop"
		}
		seq.SetTelemetry(server.Telemetry())
		fmt.Printf("bookstore on http://%s  (scenario %q, %s, %s)\n",
			built.Addr, sched.Scenario().Name, loop, level)
	case *rate > 0:
		fmt.Printf("bookstore on http://%s  (%s, open loop %.0f req/s %s, %s)\n",
			built.Addr, mix, *rate, built.Driver.Options().ArrivalProcess, level)
	default:
		fmt.Printf("bookstore on http://%s  (%s, %d browsers, %s)\n", built.Addr, mix, *clients, level)
	}
	fmt.Printf("observability: http://%s/metrics  http://%s/admin/trace\n", built.Addr, built.Addr)

	// With -faults the live stack is wrapped in the fault-injection layer and
	// the RAC agent runs its resilience policy (retry with real backoff,
	// invalid-interval rejection, rollback-to-safe).
	agentOpts := rac.AgentOptions{
		Seed:            *seed,
		Telemetry:       server.Telemetry(),
		Trace:           trace,
		ExperienceQueue: *expQueue,
	}
	if faulty != nil {
		o := rac.DefaultOptions()
		o.Resilience = rac.DefaultResilience()
		o.Resilience.RetryBackoff = 100 * time.Millisecond
		agentOpts.Options = o
		agentOpts.Sleep = time.Sleep
		sc := faulty.Scenario()
		name := sc.Name
		if name == "" {
			name = "unnamed"
		}
		fmt.Printf("fault injection: scenario %q (%d rules), resilience enabled\n", name, len(sc.Rules))
	}
	baselineOpts := rac.DefaultOptions()
	if *capCost > 0 {
		// Price the VM level into every agent's reward so holding peak
		// capacity is never a free lunch.
		baselineOpts.CapacityCost = *capCost
		o := agentOpts.Options
		if o == (rac.Options{}) {
			o = rac.DefaultOptions()
		}
		o.CapacityCost = *capCost
		agentOpts.Options = o
	}
	if *capacityOn {
		fmt.Printf("capacity: elastic level control from %s (ordinal %d), provision delay %d interval(s), reward price %g/level·interval\n",
			level, rac.LevelOrdinal(level), *capDelay, *capCost)
	}

	var tuner rac.Tuner
	switch *agentKind {
	case "rac":
		tuner, err = rac.NewAgent(sys, agentOpts)
	case "static":
		tuner, err = rac.NewStaticAgent(sys, baselineOpts)
	case "trial-and-error":
		tuner, err = rac.NewTrialAndErrorAgent(sys, baselineOpts)
	case "hillclimb":
		tuner, err = rac.NewHillClimbAgent(sys, baselineOpts)
	default:
		return fmt.Errorf("unknown agent %q", *agentKind)
	}
	if err != nil {
		return err
	}

	// A termination signal never cuts a measurement interval in half: it is
	// only checked between Step calls, so the in-flight interval completes,
	// the summary prints, and -snapshot still captures the learned state.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	var retries, invalids, degradeds, rollbacks int
	if sched != nil {
		fmt.Println("\niter   rt(paper-s)  X(req/s)  offered  phase     action")
	} else {
		fmt.Println("\niter   rt(paper-s)  X(req/s)  action")
	}
steps:
	for i := 0; i < *iters; i++ {
		select {
		case s := <-sig:
			fmt.Printf("racagent: %s — stopping after the finished interval\n", s)
			break steps
		default:
		}
		// With a scenario active the offered load is recomputed per interval
		// (the fixed -rate no longer describes it) and recorded in the
		// decision trace before the step, so rollbacks and switches can be
		// correlated with the load that provoked them. The closed loop also
		// re-applies the interval's workload; the open loop paces itself from
		// the schedule.
		var iv rac.WorkloadInterval
		if sched != nil {
			iv = seq.Observe(i)
			if !*openLoop {
				if err := built.Live.SetWorkload(iv.Workload); err != nil {
					return fmt.Errorf("interval %d workload: %w", i, err)
				}
			}
			trace.Add(rac.TraceEvent{
				Kind:        rac.TraceKindWorkload,
				Iteration:   i + 1,
				OfferedRate: iv.OfferedRate,
				Detail:      iv.PhaseName,
			})
		}
		step, err := tuner.Step(context.Background())
		if err != nil {
			return err
		}
		marks := ""
		if step.Attempts > 1 {
			marks += fmt.Sprintf("  [%d attempts]", step.Attempts)
			retries += step.Attempts - 1
		}
		if step.Degraded {
			degradeds++
		}
		if step.Invalid {
			marks += fmt.Sprintf("  [invalid: %s]", step.InvalidReason)
			invalids++
		}
		if step.RolledBack {
			marks += "  [rolled back]"
			rollbacks++
		}
		if sched != nil {
			fmt.Printf("%4d  %11.3f  %8.1f  %7.1f  %-8s  %s%s\n",
				step.Iteration, step.MeanRT, step.Throughput, iv.OfferedRate, iv.PhaseName,
				step.Action.Describe(space), marks)
		} else {
			fmt.Printf("%4d  %11.3f  %8.1f  %s%s\n",
				step.Iteration, step.MeanRT, step.Throughput, step.Action.Describe(space), marks)
		}
	}
	// A queued agent may still be retraining on its last interval; Close
	// applies it (and surfaces a deferred learning error) before the summary
	// and the snapshot read the learned state.
	if c, ok := tuner.(io.Closer); ok {
		if err := c.Close(); err != nil {
			return fmt.Errorf("final retrain: %w", err)
		}
	}
	st := server.Stats()
	fmt.Printf("\nserver stats: served=%d rejected=%d sessions=%d\n",
		st.Served, st.Rejected, st.Sessions)
	if *admission {
		fmt.Printf("admission gate: admitted=%d rejected=%d scale=%.2f regime=%s\n",
			st.GateAdmitted, st.GateRejected, st.GateScale, st.GateRegime)
	}
	if c := built.Capacity; c != nil {
		fmt.Printf("capacity: level=%s scale-ups=%d scale-downs=%d holds=%d cost=%d level·intervals\n",
			c.AppLevel(), c.ScaleUps(), c.ScaleDowns(), c.Holds(), c.TotalCost())
	}
	if faulty != nil {
		byKind := map[rac.FaultKind]int{}
		for _, inj := range faulty.Injected() {
			byKind[inj.Kind]++
		}
		fmt.Printf("faults injected: %d total", len(faulty.Injected()))
		for _, k := range rac.FaultKinds() {
			if byKind[k] > 0 {
				fmt.Printf("  %s=%d", k, byKind[k])
			}
		}
		fmt.Println()
		fmt.Printf("recovery: retries=%d invalid-intervals=%d degraded-intervals=%d rollbacks=%d\n",
			retries, invalids, degradeds, rollbacks)
	}
	if *telemetry != "" {
		if err := dumpTelemetry(*telemetry, server.Telemetry(), trace); err != nil {
			return fmt.Errorf("telemetry dump: %w", err)
		}
	}
	if *snapshot != "" {
		if err := saveSnapshot(*snapshot, tuner); err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
		fmt.Printf("agent state saved to %s\n", *snapshot)
	}
	return nil
}

// saveSnapshot serializes the RAC agent's learned state (policy name,
// Q-table, RNG streams, retraining window) so a later run can resume it.
func saveSnapshot(path string, tuner rac.Tuner) error {
	a, ok := tuner.(*rac.Agent)
	if !ok {
		return fmt.Errorf("agent kind %T has no serializable state", tuner)
	}
	st, err := a.ExportState()
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := st.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// dumpTelemetry writes the end-of-run snapshot (registry state plus the full
// decision trace) as JSON to path, or stdout for "-".
func dumpTelemetry(path string, reg *rac.Telemetry, trace *rac.Trace) error {
	dump := struct {
		Metrics rac.TelemetrySnapshot `json:"metrics"`
		Trace   []rac.TraceEvent      `json:"trace"`
	}{Metrics: reg.Snapshot(), Trace: trace.Snapshot()}

	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(dump)
}

func parseMix(name string) (rac.Mix, error) {
	for _, m := range []rac.Mix{rac.Browsing, rac.Shopping, rac.Ordering} {
		if m.String() == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown mix %q", name)
}

func parseLevel(name string) (rac.Level, error) {
	for _, l := range []rac.Level{rac.Level1, rac.Level2, rac.Level3} {
		if l.Name == name {
			return l, nil
		}
	}
	return rac.Level{}, fmt.Errorf("unknown level %q", name)
}
