// Command racpolicy manages offline initialization policies (paper
// Algorithm 2): it trains a policy for a system context and saves it as
// JSON, or inspects a saved policy. Training against the simulator mirrors
// the paper's "more than ten hours" of offline data collection (compressed
// to minutes of wall clock); the analytic backend trains in seconds.
//
// Examples:
//
//	racpolicy -train context-3 -o ctx3.policy.json
//	racpolicy -train context-1 -backend sim -coarse 3 -o ctx1.policy.json
//	racpolicy -inspect ctx3.policy.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"github.com/rac-project/rac"
	"github.com/rac-project/rac/internal/config"
	"github.com/rac-project/rac/internal/core"
	"github.com/rac-project/rac/internal/sim"
	"github.com/rac-project/rac/internal/surface"
	"github.com/rac-project/rac/internal/system"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "racpolicy:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("racpolicy", flag.ContinueOnError)
	var (
		train   = fs.String("train", "", "train a policy for a context (context-1..context-6)")
		out     = fs.String("o", "", "output file for -train (default <context>.policy.json)")
		backend = fs.String("backend", "analytic", "sampling backend: analytic|sim")
		coarse  = fs.Int("coarse", 4, "coarse sampling levels per parameter group")
		seed    = fs.Uint64("seed", 1, "training seed")
		procs   = fs.Int("procs", 0, "worker goroutines sampling the coarse lattice (0 = all CPUs, 1 = sequential; the saved policy is identical either way)")
		noCch   = fs.Bool("nocache", false, "disable the sample memo (A/B timing; the saved policy is identical either way)")
		inspect = fs.String("inspect", "", "inspect a saved policy file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *train != "":
		return trainPolicy(*train, *out, *backend, *coarse, *seed, *procs, *noCch)
	case *inspect != "":
		return inspectPolicy(*inspect)
	default:
		return fmt.Errorf("pass -train <context> or -inspect <file>")
	}
}

func trainPolicy(ctxName, out, backend string, coarse int, seed uint64, procs int, noCache bool) error {
	ctx, err := system.ContextByName(ctxName)
	if err != nil {
		return err
	}
	space := config.Default()
	var memo *surface.Cache
	if !noCache {
		memo = surface.New(nil)
	}

	// Both backends build a fresh system per sampled configuration so the
	// coarse sweep can fan out: the simulator derives its seed from the
	// sample's pre-split RNG stream — drawn before the memo lookup and folded
	// into the key, so a hit consumes the stream exactly like a miss — making
	// the saved policy independent of -procs, of sampling order, and of
	// -nocache.
	var sampler core.StreamSampler
	switch backend {
	case "analytic":
		sampler = func(cfg config.Config, _ *sim.RNG) (float64, error) {
			return memo.Do("a|"+cfg.Key(), func() (float64, error) {
				sys, err := system.NewAnalytic(system.AnalyticOptions{Space: space, Context: ctx})
				if err != nil {
					return 0, err
				}
				return rac.SystemSampler(sys)(cfg)
			})
		}
	case "sim":
		sampler = func(cfg config.Config, rng *sim.RNG) (float64, error) {
			sysSeed := rng.Uint64()
			key := "s|" + strconv.FormatUint(sysSeed, 10) + "|" + cfg.Key()
			return memo.Do(key, func() (float64, error) {
				sys, err := system.NewSimulated(system.SimulatedOptions{
					Space: space, Context: ctx, Seed: sysSeed,
				})
				if err != nil {
					return 0, err
				}
				return rac.SystemSampler(sys)(cfg)
			})
		}
	default:
		return fmt.Errorf("unknown backend %q", backend)
	}

	start := time.Now()
	fmt.Printf("training policy for %s (%s backend, %d coarse levels)...\n", ctx, backend, coarse)
	policy, err := core.LearnPolicyStream(ctx.Name, space, sampler, core.InitOptions{
		CoarseLevels: coarse,
		Seed:         seed,
		Procs:        procs,
	})
	if err != nil {
		return err
	}
	fmt.Printf("trained in %.1fs\n", time.Since(start).Seconds())

	if out == "" {
		out = ctx.Name + ".policy.json"
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := policy.Save(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("saved to %s\n", out)

	// Show the policy's view of a few landmark configurations.
	def := space.DefaultConfig()
	fmt.Printf("predicted rt at Table-1 defaults: %.3fs\n", policy.PredictRT(def))
	return nil
}

func inspectPolicy(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	space := config.Default()
	policy, err := core.LoadPolicy(f, space)
	if err != nil {
		return err
	}
	fmt.Printf("policy:   %s\n", policy.Name())
	fmt.Printf("SLA:      %.2fs\n", policy.SLA())
	fmt.Printf("q-states: %d\n", policy.GroupQTable().Len())

	def := space.DefaultConfig()
	fmt.Printf("predicted rt at defaults: %.3fs\n", policy.PredictRT(def))
	// Walk the greedy group policy from the default configuration.
	fmt.Println("\ngreedy walk from the Table-1 defaults:")
	cur := def.Clone()
	seeder := policy.Seeder()
	acts := config.Actions(space)
	for step := 0; step < 12; step++ {
		row := seeder(cur.Key())
		if row == nil {
			break
		}
		best, bestV := 0, row[0]
		for i, a := range acts {
			if _, ok := a.Apply(space, cur); !ok {
				continue
			}
			if row[i] > bestV {
				best, bestV = i, row[i]
			}
		}
		if acts[best].Dir == config.Keep {
			fmt.Printf("  step %2d: keep (stable)\n", step+1)
			break
		}
		next, _ := acts[best].Apply(space, cur)
		fmt.Printf("  step %2d: %-28s → predicted %.3fs\n",
			step+1, acts[best].Describe(space), policy.PredictRT(next))
		cur = next
	}
	return nil
}
