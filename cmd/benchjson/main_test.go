package main

import (
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	out := `
goos: linux
goarch: amd64
BenchmarkGroupModelNext-4   	63512324	        18.35 ns/op	       0 B/op	       0 allocs/op
BenchmarkStoreSequential    	       1	9123456789 ns/op	  123456 B/op	    4567 allocs/op
BenchmarkCustomMetric-8     	     100	    250.0 ns/op	        12.50 widgets/op
PASS
ok  	github.com/rac-project/rac/internal/core	2.1s
`
	results, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(results), results)
	}
	r := results[0]
	if r.Name != "BenchmarkGroupModelNext-4" || r.Iterations != 63512324 ||
		r.NsPerOp != 18.35 || r.BytesPerOp != 0 || r.AllocsPerOp != 0 {
		t.Errorf("first result: %+v", r)
	}
	r = results[1]
	if r.NsPerOp != 9123456789 || r.AllocsPerOp != 4567 {
		t.Errorf("second result: %+v", r)
	}
	// Unknown units are skipped, ns/op still picked up.
	if results[2].NsPerOp != 250 {
		t.Errorf("third result: %+v", results[2])
	}
}

func TestParseIgnoresMalformed(t *testing.T) {
	out := `
Benchmark       broken line
BenchmarkNoIters	abc	10 ns/op
BenchmarkNoUnit	10
`
	results, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("parsed %d results from noise, want 0", len(results))
	}
}

func TestBaseName(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFig05Training-8": "BenchmarkFig05Training",
		"BenchmarkFig05Training":   "BenchmarkFig05Training",
		"BenchmarkSolve-16":        "BenchmarkSolve",
		"BenchmarkOpen-Loop":       "BenchmarkOpen-Loop", // non-numeric suffix kept
		"BenchmarkRamp-2x-4":       "BenchmarkRamp-2x",
	}
	for in, want := range cases {
		if got := baseName(in); got != want {
			t.Errorf("baseName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCompare(t *testing.T) {
	baseline := []Result{
		{Name: "BenchmarkTrain-4", NsPerOp: 1000},
		{Name: "BenchmarkOther-4", NsPerOp: 500},
	}
	within := []Result{{Name: "BenchmarkTrain-8", NsPerOp: 1800}}
	if err := Compare(&strings.Builder{}, within, baseline, 2); err != nil {
		t.Fatalf("1.8x flagged at a 2x limit: %v", err)
	}
	over := []Result{{Name: "BenchmarkTrain", NsPerOp: 2500}}
	err := Compare(&strings.Builder{}, over, baseline, 2)
	if err == nil {
		t.Fatal("2.5x regression passed a 2x limit")
	}
	if !strings.Contains(err.Error(), "BenchmarkTrain") {
		t.Fatalf("regression error names no benchmark: %v", err)
	}
	// Results with no baseline counterpart are skipped, but an entirely
	// disjoint comparison must fail rather than silently pass.
	var buf strings.Builder
	disjoint := []Result{{Name: "BenchmarkNew", NsPerOp: 10}}
	if err := Compare(&buf, disjoint, baseline, 2); err == nil {
		t.Fatal("empty comparison passed")
	}
	if !strings.Contains(buf.String(), "skipped") {
		t.Fatalf("unmatched benchmark not reported: %q", buf.String())
	}
}
