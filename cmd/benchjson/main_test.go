package main

import (
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	out := `
goos: linux
goarch: amd64
BenchmarkGroupModelNext-4   	63512324	        18.35 ns/op	       0 B/op	       0 allocs/op
BenchmarkStoreSequential    	       1	9123456789 ns/op	  123456 B/op	    4567 allocs/op
BenchmarkCustomMetric-8     	     100	    250.0 ns/op	        12.50 widgets/op
PASS
ok  	github.com/rac-project/rac/internal/core	2.1s
`
	results, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(results), results)
	}
	r := results[0]
	if r.Name != "BenchmarkGroupModelNext-4" || r.Iterations != 63512324 ||
		r.NsPerOp != 18.35 || r.BytesPerOp != 0 || r.AllocsPerOp != 0 {
		t.Errorf("first result: %+v", r)
	}
	r = results[1]
	if r.NsPerOp != 9123456789 || r.AllocsPerOp != 4567 {
		t.Errorf("second result: %+v", r)
	}
	// Unknown units are skipped, ns/op still picked up.
	if results[2].NsPerOp != 250 {
		t.Errorf("third result: %+v", results[2])
	}
}

func TestParseIgnoresMalformed(t *testing.T) {
	out := `
Benchmark       broken line
BenchmarkNoIters	abc	10 ns/op
BenchmarkNoUnit	10
`
	results, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("parsed %d results from noise, want 0", len(results))
	}
}
