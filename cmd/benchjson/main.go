// Command benchjson converts `go test -bench` text output into a JSON
// summary, one record per benchmark with the metrics that matter for the
// repo's perf tracking: ns/op, B/op and allocs/op. It reads stdin (or a file
// passed as the first argument) and writes JSON to stdout (or -o).
//
// With -compare it instead checks the parsed results against a committed
// baseline JSON: any benchmark whose ns/op exceeds baseline×maxratio fails
// the run, which is how `make check`'s bench-train-smoke gate catches
// performance regressions. GOMAXPROCS name suffixes are ignored when
// matching, so a baseline recorded on one machine gates runs on another.
//
// Examples:
//
//	go test -run xxx -bench . -benchmem ./... | benchjson -o BENCH_quick.json
//	benchjson BENCH_train.txt -compare BENCH_train.json -maxratio 2
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line, e.g.
// "BenchmarkGroupModelNext-4   63512	 18.35 ns/op	 0 B/op	 0 allocs/op".
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric units ("bytes/tenant",
	// "rounds/sec", …) keyed by unit string. Informational: recorded in the
	// JSON but not gated by Compare, which checks ns/op only.
	Extra map[string]float64 `json:"extra,omitempty"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	in := io.Reader(os.Stdin)
	outPath, basePath := "", ""
	maxRatio := 2.0
	for i := 0; i < len(args); i++ {
		switch {
		case args[i] == "-o":
			if i+1 >= len(args) {
				return fmt.Errorf("-o needs a path")
			}
			i++
			outPath = args[i]
		case args[i] == "-compare":
			if i+1 >= len(args) {
				return fmt.Errorf("-compare needs a baseline path")
			}
			i++
			basePath = args[i]
		case args[i] == "-maxratio":
			if i+1 >= len(args) {
				return fmt.Errorf("-maxratio needs a number")
			}
			i++
			v, err := strconv.ParseFloat(args[i], 64)
			if err != nil || v <= 0 {
				return fmt.Errorf("bad -maxratio %q", args[i])
			}
			maxRatio = v
		case strings.HasPrefix(args[i], "-"):
			return fmt.Errorf("usage: benchjson [input-file] [-o output.json] [-compare baseline.json [-maxratio N]]")
		default:
			f, err := os.Open(args[i])
			if err != nil {
				return err
			}
			defer f.Close()
			in = f
		}
	}

	results, err := Parse(in)
	if err != nil {
		return err
	}

	if basePath != "" {
		baseline, err := loadBaseline(basePath)
		if err != nil {
			return err
		}
		return Compare(os.Stdout, results, baseline, maxRatio)
	}

	out := os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

func loadBaseline(path string) ([]Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var baseline []Result
	if err := json.NewDecoder(f).Decode(&baseline); err != nil {
		return nil, fmt.Errorf("decode %s: %w", path, err)
	}
	return baseline, nil
}

// baseName strips the -GOMAXPROCS suffix ("BenchmarkX-8" → "BenchmarkX") so
// baselines transfer across machines with different core counts.
func baseName(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// Compare checks results against a baseline: every benchmark present in both
// must stay within maxRatio× the baseline's ns/op. Benchmarks unique to one
// side are reported and skipped; having no benchmark in common is an error
// (an empty comparison must not pass the gate silently).
func Compare(w io.Writer, results, baseline []Result, maxRatio float64) error {
	base := make(map[string]Result, len(baseline))
	for _, b := range baseline {
		base[baseName(b.Name)] = b
	}
	matched := 0
	var regressed []string
	for _, res := range results {
		b, ok := base[baseName(res.Name)]
		if !ok {
			fmt.Fprintf(w, "%-40s %12.0f ns/op  (no baseline, skipped)\n", res.Name, res.NsPerOp)
			continue
		}
		matched++
		ratio := res.NsPerOp / b.NsPerOp
		fmt.Fprintf(w, "%-40s %12.0f ns/op  baseline %12.0f  ratio %.2fx (limit %.2fx)\n",
			res.Name, res.NsPerOp, b.NsPerOp, ratio, maxRatio)
		if ratio > maxRatio {
			regressed = append(regressed, fmt.Sprintf("%s: %.2fx > %.2fx", baseName(res.Name), ratio, maxRatio))
		}
	}
	if matched == 0 {
		return fmt.Errorf("no benchmarks in common with the baseline")
	}
	if len(regressed) > 0 {
		return fmt.Errorf("performance regression: %s", strings.Join(regressed, "; "))
	}
	return nil
}

// Parse extracts benchmark result lines from go test output, ignoring
// everything else (PASS/ok lines, logs, build noise).
func Parse(r io.Reader) ([]Result, error) {
	var results []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		res, ok := parseLine(sc.Text())
		if ok {
			results = append(results, res)
		}
	}
	return results, sc.Err()
}

// parseLine parses one "Benchmark<Name>[-P] N <value> <unit> ..." line. The
// tail is value/unit pairs; units beyond the standard three are collected
// into Extra so custom ReportMetric outputs land in the JSON record.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp, seen = v, true
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		default:
			if res.Extra == nil {
				res.Extra = make(map[string]float64)
			}
			res.Extra[unit] = v
		}
	}
	return res, seen
}
