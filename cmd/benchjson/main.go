// Command benchjson converts `go test -bench` text output into a JSON
// summary, one record per benchmark with the metrics that matter for the
// repo's perf tracking: ns/op, B/op and allocs/op. It reads stdin (or a file
// passed as the first argument) and writes JSON to stdout (or -o).
//
// Example:
//
//	go test -run xxx -bench . -benchmem ./... | benchjson -o BENCH_quick.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line, e.g.
// "BenchmarkGroupModelNext-4   63512	 18.35 ns/op	 0 B/op	 0 allocs/op".
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	in := io.Reader(os.Stdin)
	outPath := ""
	for i := 0; i < len(args); i++ {
		switch {
		case args[i] == "-o":
			if i+1 >= len(args) {
				return fmt.Errorf("-o needs a path")
			}
			i++
			outPath = args[i]
		case strings.HasPrefix(args[i], "-"):
			return fmt.Errorf("usage: benchjson [input-file] [-o output.json]")
		default:
			f, err := os.Open(args[i])
			if err != nil {
				return err
			}
			defer f.Close()
			in = f
		}
	}

	results, err := Parse(in)
	if err != nil {
		return err
	}

	out := os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// Parse extracts benchmark result lines from go test output, ignoring
// everything else (PASS/ok lines, logs, build noise).
func Parse(r io.Reader) ([]Result, error) {
	var results []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		res, ok := parseLine(sc.Text())
		if ok {
			results = append(results, res)
		}
	}
	return results, sc.Err()
}

// parseLine parses one "Benchmark<Name>[-P] N <value> <unit> ..." line. The
// tail is value/unit pairs; unknown units are skipped so custom ReportMetric
// outputs do not break parsing.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp, seen = v, true
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		}
	}
	return res, seen
}
