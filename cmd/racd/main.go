// Command racd is the fleet daemon: the multi-tenant control plane of
// internal/fleet wrapped in a long-running process. It boots a fleet from a
// JSON config (one TenantSpec per managed web system), serves the admin
// lifecycle API next to /metrics and /admin/trace, checkpoints every tenant's
// learned state on a fixed cadence, and on SIGINT/SIGTERM drains the fleet —
// each tenant finishes its current interval and writes a final checkpoint —
// before exiting. Restarted over the same checkpoint directory, racd
// warm-restarts every tenant from its newest valid snapshot, so learned
// Q-tables survive the round trip.
//
//	racd -config examples/racd_fleet.json
//	curl http://127.0.0.1:7070/admin/fleet
//	curl -X POST http://127.0.0.1:7070/admin/fleet/shop-a/pause
//
// The -selfcheck mode (used by `make fleet-smoke`) runs the whole story in
// one process against a temporary directory: boot two simulated tenants,
// exercise the admin API, checkpoint, tear the fleet down, boot a second
// fleet over the same directory and verify both tenants restore.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	rac "github.com/rac-project/rac"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "racd:", err)
		os.Exit(1)
	}
}

// fleetConfig is the racd JSON config: fleet-wide knobs plus the tenant list.
// See examples/racd_fleet.json.
type fleetConfig struct {
	// Listen is the admin API address (default 127.0.0.1:7070).
	Listen string `json:"listen,omitempty"`
	// Seed is the fleet-wide base seed; tenant streams are derived from it.
	Seed uint64 `json:"seed,omitempty"`
	// Procs bounds the workers stepping tenants per round (0 = all CPUs).
	Procs int `json:"procs,omitempty"`
	// Shards is how many scheduling shards tenants hash onto (0 = fleet
	// default). Results are byte-identical at any shard count.
	Shards int `json:"shards,omitempty"`
	// TenantMetricsLimit caps per-tenant metric cardinality: tenants admitted
	// past it share per-shard step-latency histograms (0 = fleet default,
	// negative = all tenants aggregate per shard).
	TenantMetricsLimit int `json:"tenantMetricsLimit,omitempty"`
	// SLASeconds is the default SLA for tenants that do not set their own.
	SLASeconds float64 `json:"slaSeconds,omitempty"`
	// CheckpointDir holds per-tenant state snapshots; empty disables them.
	CheckpointDir string `json:"checkpointDir,omitempty"`
	// CheckpointEvery is the default snapshot cadence in intervals.
	CheckpointEvery int `json:"checkpointEvery,omitempty"`
	// CheckpointKeep is how many snapshots to retain per tenant.
	CheckpointKeep int `json:"checkpointKeep,omitempty"`
	// RegistryDir holds trained context policies for warm starts.
	RegistryDir string `json:"registryDir,omitempty"`
	// StepLog is the per-tenant in-memory step-record capacity.
	StepLog int `json:"stepLog,omitempty"`
	// TickMillis pauses between scheduling rounds (0 = back to back).
	TickMillis int `json:"tickMillis,omitempty"`
	// Tenants are the managed systems.
	Tenants []rac.TenantSpec `json:"tenants"`
}

func loadConfig(path string) (fleetConfig, error) {
	var cfg fleetConfig
	buf, err := os.ReadFile(path)
	if err != nil {
		return cfg, err
	}
	dec := json.NewDecoder(strings.NewReader(string(buf)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return cfg, fmt.Errorf("%s: %w", path, err)
	}
	if len(cfg.Tenants) == 0 {
		return cfg, fmt.Errorf("%s: no tenants declared", path)
	}
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:7070"
	}
	return cfg, nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("racd", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		cfgPath   = fs.String("config", "", "JSON fleet config (see examples/racd_fleet.json)")
		listen    = fs.String("listen", "", "admin API address (overrides the config)")
		rounds    = fs.Int("rounds", 0, "stop after this many scheduling rounds (0 = run until SIGINT/SIGTERM)")
		traceCap  = fs.Int("trace", 512, "decision/lifecycle trace ring capacity")
		scenario  = fs.String("scenario", "", "default workload scenario (library name or JSON file) for tenants whose spec does not set one")
		selfcheck = fs.Bool("selfcheck", false, "run the built-in checkpoint/restart smoke and exit")
		tenants   = fs.Int("tenants", 0, "with -selfcheck: run the fleet-scale smoke over this many analytic tenants instead")
		shards    = fs.Int("shards", 0, "scheduling shard count (0 = fleet default); with -selfcheck -tenants, the scale smoke's shard count")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *selfcheck {
		if *tenants > 0 {
			return runScaleSelfcheck(out, *tenants, *shards)
		}
		return runSelfcheck(out)
	}
	if *cfgPath == "" {
		return errors.New("missing -config (or -selfcheck)")
	}
	cfg, err := loadConfig(*cfgPath)
	if err != nil {
		return err
	}
	if *listen != "" {
		cfg.Listen = *listen
	}
	if *shards > 0 {
		cfg.Shards = *shards
	}
	if *scenario != "" {
		if _, err := rac.ResolveWorkloadScenario(*scenario); err != nil {
			return err
		}
		for i := range cfg.Tenants {
			if cfg.Tenants[i].Scenario == "" {
				cfg.Tenants[i].Scenario = *scenario
			}
		}
	}

	d, err := newDaemon(cfg, *traceCap)
	if err != nil {
		return err
	}
	defer d.close()
	if err := d.admitAll(out); err != nil {
		return err
	}
	addr, err := d.serve(cfg.Listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "fleet admin on http://%s/admin/fleet  metrics on http://%s/metrics\n", addr, addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	return d.loop(out, sig, *rounds)
}

// daemon owns the fleet, its observability plumbing, the admin HTTP server
// and any live backends booted for tenants.
type daemon struct {
	cfg   fleetConfig
	fleet *rac.Fleet
	tel   *rac.Telemetry
	trace *rac.Trace

	srv *http.Server
	ln  net.Listener

	// liveServers are in-process bookstore stacks backing "live" tenants,
	// shut down with the daemon.
	liveServers []*rac.LiveServer
}

func newDaemon(cfg fleetConfig, traceCap int) (*daemon, error) {
	d := &daemon{cfg: cfg, tel: rac.NewTelemetry(), trace: rac.NewTrace(traceCap)}
	f, err := rac.NewFleet(rac.FleetOptions{
		Seed:               cfg.Seed,
		Procs:              cfg.Procs,
		Shards:             cfg.Shards,
		TenantMetricsLimit: cfg.TenantMetricsLimit,
		SLASeconds:         cfg.SLASeconds,
		CheckpointDir:      cfg.CheckpointDir,
		CheckpointEvery:    cfg.CheckpointEvery,
		CheckpointKeep:     cfg.CheckpointKeep,
		RegistryDir:        cfg.RegistryDir,
		StepLog:            cfg.StepLog,
		Telemetry:          d.tel,
		Trace:              d.trace,
		NewSystem:          d.buildLive,
	})
	if err != nil {
		return nil, err
	}
	d.fleet = f
	return d, nil
}

// buildLive is the fleet's SystemBuilder hook for backend "live": a real
// in-process three-tier bookstore plus an HTTP load generator, tuned over
// actual request latencies. Any other backend is declined, falling back to
// the fleet built-ins ("sim", "analytic").
func (d *daemon) buildLive(spec rac.TenantSpec, ctx rac.Context, seed uint64) (rac.System, error) {
	if spec.Backend != "live" {
		return nil, nil
	}
	var interval time.Duration
	if spec.MeasureSeconds > 0 {
		interval = time.Duration(spec.MeasureSeconds * float64(time.Second))
	}
	load := rac.LoadOptions{
		Rate:           spec.Rate,
		ArrivalProcess: rac.LoadArrival(spec.Arrival),
		Shards:         spec.LoadShards,
		MaxInFlight:    spec.LoadInFlight,
	}
	// A scenario tenant's data plane follows the compiled arrival schedule:
	// the open-loop engine offers the scenario's time-varying load while the
	// fleet advances the same scenario one interval per step on the control
	// side.
	if spec.Scenario != "" {
		sc, err := rac.ResolveWorkloadScenario(spec.Scenario)
		if err != nil {
			return nil, err
		}
		sched, err := rac.CompileWorkload(sc)
		if err != nil {
			return nil, err
		}
		load.Schedule = sched
	}
	// Fault wrapping stays with the fleet (it layers spec.Faults over
	// whatever this hook returns), so the spec's faults are not passed here.
	built, err := rac.BuildSystem(rac.SystemSpec{
		Backend:  "live",
		Space:    d.fleet.Space(),
		Context:  ctx,
		Seed:     seed,
		Interval: interval,
		Load:     load,
	})
	if err != nil {
		return nil, err
	}
	d.liveServers = append(d.liveServers, built.Server)
	return built.Live, nil
}

// admitAll admits every configured tenant, reporting warm starts and
// checkpoint restores as they happen.
func (d *daemon) admitAll(out io.Writer) error {
	for _, spec := range d.cfg.Tenants {
		t, err := d.fleet.Admit(spec)
		if err != nil {
			return fmt.Errorf("admit %s: %w", spec.Name, err)
		}
		st := t.Status()
		note := "cold start"
		switch {
		case st.Restored:
			note = fmt.Sprintf("restored from checkpoint at interval %d", st.Interval)
		case st.WarmStarted:
			note = fmt.Sprintf("warm start from policy %s", st.Policy)
		}
		if spec.Capacity {
			note += fmt.Sprintf(", elastic capacity from %s", st.Level)
		}
		fmt.Fprintf(out, "tenant %-12s %-8s backend=%s context=%s — %s\n",
			st.Name, st.State, st.Backend, st.Context, note)
	}
	return nil
}

// serve starts the admin HTTP server: the fleet lifecycle API plus the
// fleet-wide /metrics and /admin/trace views.
func (d *daemon) serve(addr string) (string, error) {
	mux := http.NewServeMux()
	fh := d.fleet.Handler()
	mux.Handle("/admin/v1/", fh)
	mux.Handle("/admin/fleet", fh)
	mux.Handle("/admin/fleet/", fh)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := d.tel.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("GET /admin/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(d.trace.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	d.ln = ln
	d.srv = &http.Server{Handler: mux}
	go d.srv.Serve(ln) //nolint:errcheck — returns ErrServerClosed on Shutdown
	return ln.Addr().String(), nil
}

// loop runs scheduling rounds until the round budget is spent, every tenant
// has stopped, or a termination signal arrives; then it drains the fleet
// (final checkpoints) and shuts the admin server down.
func (d *daemon) loop(out io.Writer, sig <-chan os.Signal, maxRounds int) error {
	tick := time.Duration(d.cfg.TickMillis) * time.Millisecond
	ran := 0
	for {
		select {
		case s := <-sig:
			fmt.Fprintf(out, "racd: %s — draining fleet\n", s)
			return d.shutdown(out)
		default:
		}
		if d.fleet.Active() == 0 {
			fmt.Fprintln(out, "racd: no active tenants left")
			return d.shutdown(out)
		}
		if err := d.fleet.RunRound(); err != nil {
			fmt.Fprintf(out, "racd: round %d: %v\n", d.fleet.Rounds(), err)
		}
		ran++
		if maxRounds > 0 && ran >= maxRounds {
			fmt.Fprintf(out, "racd: round budget spent (%d)\n", ran)
			return d.shutdown(out)
		}
		if tick > 0 {
			select {
			case s := <-sig:
				fmt.Fprintf(out, "racd: %s — draining fleet\n", s)
				return d.shutdown(out)
			case <-time.After(tick):
			}
		}
	}
}

// shutdown drains the fleet — every active tenant gets a final checkpoint —
// then stops the admin server and any live backends within a bounded drain.
func (d *daemon) shutdown(out io.Writer) error {
	err := d.fleet.Shutdown()
	if err != nil {
		fmt.Fprintf(out, "racd: fleet shutdown: %v\n", err)
	}
	for _, st := range d.fleet.Statuses() {
		fmt.Fprintf(out, "tenant %-12s %-8s interval=%d checkpoints=%d\n",
			st.Name, st.State, st.Interval, st.Checkpoints)
	}
	d.close()
	return err
}

// close releases the HTTP server and live backends (idempotent).
func (d *daemon) close() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if d.srv != nil {
		_ = d.srv.Shutdown(ctx)
		d.srv = nil
	}
	for _, s := range d.liveServers {
		_ = s.Shutdown(ctx)
	}
	d.liveServers = nil
}

// runSelfcheck is the fleet smoke behind `make fleet-smoke`: boot two
// simulated tenants against a temporary checkpoint directory, exercise the
// admin API, drain with final checkpoints, then boot a second fleet over the
// same directory and verify both tenants warm-restart from disk.
func runSelfcheck(out io.Writer) error {
	dir, err := os.MkdirTemp("", "racd-selfcheck-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	cfg := fleetConfig{
		Listen:          "127.0.0.1:0",
		Seed:            42,
		CheckpointDir:   filepath.Join(dir, "checkpoints"),
		CheckpointEvery: 2,
		RegistryDir:     filepath.Join(dir, "registry"),
		Tenants: []rac.TenantSpec{
			{Name: "shop-a", Backend: "sim", Context: "context-1", SettleSeconds: 5, MeasureSeconds: 10},
			{Name: "shop-b", Backend: "sim", Context: "context-2", SettleSeconds: 5, MeasureSeconds: 10},
			{Name: "shop-c", Backend: "sim", Context: "context-1", SettleSeconds: 5, MeasureSeconds: 10,
				Scenario: "ramp"},
		},
	}

	// First life: admit, run a few rounds, poke the admin API, drain.
	d, err := newDaemon(cfg, 128)
	if err != nil {
		return err
	}
	defer d.close()
	if err := d.admitAll(out); err != nil {
		return err
	}
	addr, err := d.serve(cfg.Listen)
	if err != nil {
		return err
	}
	if _, err := d.fleet.Run(6); err != nil {
		return fmt.Errorf("selfcheck rounds: %w", err)
	}

	base := "http://" + addr
	var view rac.FleetView
	if err := getJSON(base+"/admin/fleet", &view); err != nil {
		return err
	}
	if len(view.Tenants) != 3 || view.Active != 3 {
		return fmt.Errorf("selfcheck: admin list reported %d tenants, %d active", len(view.Tenants), view.Active)
	}
	resp, err := http.Post(base+"/admin/fleet/shop-a/checkpoint", "", nil)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("selfcheck: manual checkpoint returned %d", resp.StatusCode)
	}
	if err := d.shutdown(out); err != nil {
		return fmt.Errorf("selfcheck drain: %w", err)
	}

	// Second life over the same directories: both tenants must restore.
	d2, err := newDaemon(cfg, 128)
	if err != nil {
		return err
	}
	defer d2.close()
	if err := d2.admitAll(out); err != nil {
		return err
	}
	for _, name := range []string{"shop-a", "shop-b", "shop-c"} {
		st := d2.fleet.Tenant(name).Status()
		if !st.Restored || st.Interval == 0 {
			return fmt.Errorf("selfcheck: tenant %s did not warm-restart (restored=%v interval=%d)",
				name, st.Restored, st.Interval)
		}
	}
	if _, err := d2.fleet.Run(2); err != nil {
		return fmt.Errorf("selfcheck post-restart rounds: %w", err)
	}
	addr2, err := d2.serve("127.0.0.1:0")
	if err != nil {
		return err
	}
	metrics, err := getBody("http://" + addr2 + "/metrics")
	if err != nil {
		return err
	}
	for _, want := range []string{"rac_fleet_restores_total 3", "rac_fleet_checkpoints_total"} {
		if !strings.Contains(metrics, want) {
			return fmt.Errorf("selfcheck: /metrics missing %q", want)
		}
	}
	if err := d2.shutdown(out); err != nil {
		return fmt.Errorf("selfcheck second drain: %w", err)
	}
	// The scenario tenant must have resumed mid-scenario: its workload events
	// continue from the checkpointed interval instead of restarting at 1.
	st := d2.fleet.Tenant("shop-c").Status()
	if st.Interval < 8 {
		return fmt.Errorf("selfcheck: scenario tenant resumed at interval %d, want ≥ 8", st.Interval)
	}
	fmt.Fprintln(out, "fleet selfcheck ok: 3 tenants checkpointed, restarted and warm-restored")
	return nil
}

// runScaleSelfcheck is the fleet-scale smoke behind `make fleet-scale-smoke`:
// boot a fleet, bulk-admit many analytic tenants through the versioned admin
// API, page through the tenant listing, run scheduling rounds, and verify the
// two production-scale properties — bounded memory per tenant and flat
// round latency (no fleet-wide lock convoy as rounds accumulate state).
func runScaleSelfcheck(out io.Writer, tenants, shards int) error {
	tel := rac.NewTelemetry()
	f, err := rac.NewFleet(rac.FleetOptions{Seed: 7, Shards: shards, Telemetry: tel})
	if err != nil {
		return err
	}
	defer f.Shutdown() //nolint:errcheck — smoke teardown

	mux := http.NewServeMux()
	fh := f.Handler()
	mux.Handle("/admin/v1/", fh)
	mux.Handle("/admin/fleet", fh)
	mux.Handle("/admin/fleet/", fh)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck — returns ErrServerClosed on Shutdown
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	base := "http://" + ln.Addr().String()

	// Bulk admission through POST /admin/v1/tenants, in batches.
	const batchSize = 500
	admitted := 0
	for admitted < tenants {
		n := batchSize
		if tenants-admitted < n {
			n = tenants - admitted
		}
		batch := make([]rac.TenantSpec, n)
		for i := range batch {
			id := admitted + i
			batch[i] = rac.TenantSpec{
				Name:    fmt.Sprintf("scale-%05d", id),
				Backend: "analytic",
				Context: fmt.Sprintf("context-%d", id%6+1),
			}
		}
		body, err := json.Marshal(batch)
		if err != nil {
			return err
		}
		resp, err := http.Post(base+"/admin/v1/tenants", "application/json", strings.NewReader(string(body)))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			return fmt.Errorf("scale selfcheck: bulk admit returned %d, want 201", resp.StatusCode)
		}
		admitted += n
	}

	// The paginated listing must walk the whole fleet exactly once.
	seen := 0
	for offset := 0; ; {
		var page rac.TenantPage
		if err := getJSON(fmt.Sprintf("%s/admin/v1/tenants?offset=%d&limit=1000", base, offset), &page); err != nil {
			return err
		}
		if page.Total != tenants {
			return fmt.Errorf("scale selfcheck: page total %d, want %d", page.Total, tenants)
		}
		if len(page.Tenants) == 0 {
			break
		}
		seen += len(page.Tenants)
		offset += len(page.Tenants)
	}
	if seen != tenants {
		return fmt.Errorf("scale selfcheck: pagination walked %d tenants, want %d", seen, tenants)
	}

	// Every tenant must be owned by exactly one shard.
	var shardView []rac.ShardStatus
	if err := getJSON(base+"/admin/v1/shards", &shardView); err != nil {
		return err
	}
	owned := 0
	for _, s := range shardView {
		owned += s.Tenants
	}
	if owned != tenants {
		return fmt.Errorf("scale selfcheck: shards own %d tenants, want %d", owned, tenants)
	}

	// The legacy route must still answer, flagged deprecated.
	resp, err := http.Get(base + "/admin/fleet")
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Deprecation") != "true" {
		return fmt.Errorf("scale selfcheck: legacy route status %d, Deprecation %q",
			resp.StatusCode, resp.Header.Get("Deprecation"))
	}

	// Round latency must stay flat as per-tenant state accumulates: the late
	// rounds may pay for grown Q-tables but not for any superlinear fleet-wide
	// bottleneck.
	const rounds = 6
	durs := make([]float64, rounds)
	for i := range durs {
		start := time.Now()
		if err := f.RunRound(); err != nil {
			return fmt.Errorf("scale selfcheck: round %d: %w", i+1, err)
		}
		durs[i] = time.Since(start).Seconds()
	}
	firstAvg := (durs[0] + durs[1]) / 2
	lastAvg := (durs[rounds-2] + durs[rounds-1]) / 2
	if lastAvg > 4*firstAvg+0.25 {
		return fmt.Errorf("scale selfcheck: round latency grew %.3fs -> %.3fs (first vs last two-round average)",
			firstAvg, lastAvg)
	}

	// Memory per tenant must stay bounded — the shared Q-structure keeps the
	// MDP arrays O(contexts), not O(tenants).
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	perTenant := ms.HeapAlloc / uint64(tenants)
	const maxBytesPerTenant = 512 * 1024
	if perTenant > maxBytesPerTenant {
		return fmt.Errorf("scale selfcheck: %d bytes of heap per tenant, want ≤ %d", perTenant, maxBytesPerTenant)
	}

	fmt.Fprintf(out, "fleet scale selfcheck ok: %d tenants on %d shards, %d KiB/tenant, rounds %.3fs -> %.3fs\n",
		tenants, len(shardView), perTenant/1024, firstAvg, lastAvg)
	return nil
}

func getJSON(url string, v any) error {
	body, err := getBody(url)
	if err != nil {
		return err
	}
	return json.Unmarshal([]byte(body), v)
}

func getBody(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %d: %s", url, resp.StatusCode, buf)
	}
	return string(buf), nil
}
