package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	rac "github.com/rac-project/rac"
)

// writeConfig dumps a fleetConfig to a temp file and returns its path.
func writeConfig(t *testing.T, cfg fleetConfig) string {
	t.Helper()
	buf, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fleet.json")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func smokeConfig(t *testing.T) fleetConfig {
	t.Helper()
	return fleetConfig{
		Listen:          "127.0.0.1:0",
		Seed:            7,
		CheckpointDir:   filepath.Join(t.TempDir(), "ckpt"),
		CheckpointEvery: 2,
		Tenants: []rac.TenantSpec{
			{Name: "shop-a", Backend: "sim", Context: "context-1", SettleSeconds: 5, MeasureSeconds: 10},
			{Name: "shop-b", Backend: "analytic", Context: "context-2", NoiseSigma: 0.1},
		},
	}
}

func TestLoadConfigValidation(t *testing.T) {
	if _, err := loadConfig(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing file accepted")
	}

	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"tennants": []}`), 0o644) //nolint:errcheck
	if _, err := loadConfig(bad); err == nil {
		t.Fatal("unknown field accepted")
	}

	empty := filepath.Join(dir, "empty.json")
	os.WriteFile(empty, []byte(`{"seed": 1}`), 0o644) //nolint:errcheck
	if _, err := loadConfig(empty); err == nil {
		t.Fatal("tenant-less config accepted")
	}

	ok := writeConfig(t, smokeConfig(t))
	cfg, err := loadConfig(ok)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Tenants) != 2 {
		t.Fatalf("tenants = %d", len(cfg.Tenants))
	}
	// An empty listen address gets the daemon default.
	noListen := smokeConfig(t)
	noListen.Listen = ""
	cfg, err = loadConfig(writeConfig(t, noListen))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Listen != "127.0.0.1:7070" {
		t.Fatalf("default listen = %q", cfg.Listen)
	}
}

func TestRunFlagErrors(t *testing.T) {
	if err := run(nil, io.Discard); err == nil || !strings.Contains(err.Error(), "missing -config") {
		t.Fatalf("config-less run: %v", err)
	}
	if err := run([]string{"-nope"}, io.Discard); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// TestRunRoundBudget boots the daemon from a config file for a fixed round
// budget and checks that it drains with final checkpoints on disk.
func TestRunRoundBudget(t *testing.T) {
	cfg := smokeConfig(t)
	path := writeConfig(t, cfg)
	var out bytes.Buffer
	if err := run([]string{"-config", path, "-rounds", "3"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{"fleet admin on", "round budget spent (3)", "stopped"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	// Drain wrote final checkpoints for both tenants.
	for _, name := range []string{"shop-a", "shop-b"} {
		matches, err := filepath.Glob(filepath.Join(cfg.CheckpointDir, name, "*.rac"))
		if err != nil {
			t.Fatal(err)
		}
		if len(matches) == 0 {
			t.Errorf("no checkpoints for %s", name)
		}
	}
}

// syncWriter serializes writes from the daemon goroutine with test reads.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestSignalDrain runs the daemon with no round budget and stops it with a
// real SIGTERM: the loop must drain the fleet and exit cleanly.
func TestSignalDrain(t *testing.T) {
	cfg := smokeConfig(t)
	cfg.TickMillis = 5
	path := writeConfig(t, cfg)
	out := &syncWriter{}
	done := make(chan error, 1)
	go func() { done <- run([]string{"-config", path}, out) }()

	// Wait for the admin server (the signal handler is installed right
	// after it), then give Notify a beat to land before firing.
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(out.String(), "fleet admin on") {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never came up:\n%s", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain: %v\n%s", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not drain after SIGTERM:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "draining fleet") {
		t.Errorf("no drain note in output:\n%s", out.String())
	}
}

// TestSelfcheck runs the `make fleet-smoke` path end to end.
func TestSelfcheck(t *testing.T) {
	var out bytes.Buffer
	if err := runSelfcheck(&out); err != nil {
		t.Fatalf("selfcheck: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "fleet selfcheck ok") {
		t.Fatalf("selfcheck output:\n%s", out.String())
	}
}
