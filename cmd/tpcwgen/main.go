// Command tpcwgen inspects the TPC-W-like workload model: the interaction
// mixes, per-class service demands, and sampled request traces.
//
// Examples:
//
//	tpcwgen -mixes                  # class probabilities per mix
//	tpcwgen -demands                # per-class service demands
//	tpcwgen -trace 20 -mix ordering # sample a request trace
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"github.com/rac-project/rac/internal/sim"
	"github.com/rac-project/rac/internal/tpcw"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tpcwgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tpcwgen", flag.ContinueOnError)
	var (
		mixes   = fs.Bool("mixes", false, "print class probabilities per mix")
		demands = fs.Bool("demands", false, "print per-class service demands")
		trace   = fs.Int("trace", 0, "sample N interactions of a request trace")
		mixName = fs.String("mix", "shopping", "mix for -trace")
		seed    = fs.Uint64("seed", 1, "trace seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*mixes && !*demands && *trace == 0 {
		*mixes, *demands = true, true
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	if *mixes {
		fmt.Fprintln(tw, "class\tbrowsing\tshopping\tordering")
		probs := map[tpcw.Mix][]float64{}
		for _, m := range tpcw.Mixes() {
			probs[m] = tpcw.ClassProbs(m)
		}
		for i, c := range tpcw.Classes() {
			fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.2f\n",
				c, probs[tpcw.Browsing][i], probs[tpcw.Shopping][i], probs[tpcw.Ordering][i])
		}
		fmt.Fprintln(tw)
	}
	if *demands {
		fmt.Fprintln(tw, "class\tweb(ms)\tapp(ms)\tdb(ms)\tio(ms)")
		for _, c := range tpcw.Classes() {
			d := tpcw.ClassDemand(c)
			fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.1f\t%.1f\n",
				c, d.Web*1000, d.App*1000, d.DB*1000, d.IO*1000)
		}
		fmt.Fprintln(tw, "\nmix\tmean web(ms)\tmean app(ms)\tmean db(ms)\tmean io(ms)")
		for _, m := range tpcw.Mixes() {
			d := tpcw.MeanDemand(m)
			fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.2f\t%.2f\n",
				m, d.Web*1000, d.App*1000, d.DB*1000, d.IO*1000)
		}
		fmt.Fprintln(tw)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	if *trace > 0 {
		mix, err := tpcw.ParseMix(*mixName)
		if err != nil {
			return err
		}
		gen, err := tpcw.NewGenerator(mix, sim.NewRNG(*seed))
		if err != nil {
			return err
		}
		fmt.Printf("trace of %d %s interactions:\n", *trace, mix)
		clock := 0.0
		for i := 0; i < *trace; i++ {
			clock += gen.ThinkTime()
			class := gen.NextClass()
			d := gen.RequestDemand(class)
			end := ""
			if gen.SessionOver() {
				end = "  [session ends]"
			}
			fmt.Printf("t=%7.1fs  %-7s web=%4.1fms app=%4.1fms db=%4.1fms io=%4.1fms%s\n",
				clock, class, d.Web*1000, d.App*1000, d.DB*1000, d.IO*1000, end)
		}
	}
	return nil
}
