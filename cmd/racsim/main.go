// Command racsim runs single scenarios of the simulated three-tier website:
// steady-state measurements under a chosen configuration, or one-parameter
// sweeps. It is the low-level inspection tool; cmd/racbench regenerates the
// paper's figures and cmd/racagent runs the RL agent.
//
// Examples:
//
//	racsim -mix ordering -clients 400 -level Level-1
//	racsim -sweep MaxClients -mix ordering -level Level-3
//	racsim -faults examples/faults_basic.json -intervals 30
//	racsim -scenario ramp               # replay a workload scenario
//	racsim -validate-scenarios examples/scenarios
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"text/tabwriter"

	"github.com/rac-project/rac"
	"github.com/rac-project/rac/internal/config"
	"github.com/rac-project/rac/internal/parallel"
	"github.com/rac-project/rac/internal/surface"
	"github.com/rac-project/rac/internal/system"
	"github.com/rac-project/rac/internal/telemetry"
	"github.com/rac-project/rac/internal/tpcw"
	"github.com/rac-project/rac/internal/vmenv"
	"github.com/rac-project/rac/internal/webtier"
	"github.com/rac-project/rac/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "racsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("racsim", flag.ContinueOnError)
	var (
		mixName  = fs.String("mix", "ordering", "workload mix: browsing|shopping|ordering")
		clients  = fs.Int("clients", 400, "emulated browser population")
		level    = fs.String("level", "Level-1", "app/db VM allocation: Level-1|Level-2|Level-3")
		seed     = fs.Uint64("seed", 1, "simulation seed")
		warmup   = fs.Float64("warmup", 120, "warm-up seconds (virtual)")
		interval = fs.Float64("interval", 120, "measurement interval seconds (virtual)")
		sweep    = fs.String("sweep", "", "sweep one parameter by name (e.g. MaxClients)")
		cfgStr   = fs.String("config", "", "comma-separated configuration vector (Table 1 order)")
		telPath  = fs.String("telemetry", "", "dump a telemetry snapshot at exit to this file, or - for stdout")
		procs    = fs.Int("procs", 0, "worker goroutines for -sweep (0 = all CPUs, 1 = sequential; every point is an independent seeded run, so results are identical either way)")
		noCch    = fs.Bool("nocache", false, "disable the measurement memo (A/B timing; repeated identical measurements re-simulate, output is identical either way)")
		scenPath = fs.String("faults", "", "replay this JSON fault scenario against the fixed configuration, printing each interval as measured through the fault layer")
		nIvals   = fs.Int("intervals", 30, "measurement intervals to run with -faults")
		wlScen   = fs.String("scenario", "", "replay this workload scenario (library name or JSON file) against the fixed configuration, measuring every scenario interval on the simulator")
		valDir   = fs.String("validate-scenarios", "", "parse and compile every *.json workload scenario in this directory, then exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	mix, err := tpcw.ParseMix(*mixName)
	if err != nil {
		return err
	}
	lvl, err := vmenv.ByName(*level)
	if err != nil {
		return err
	}
	space := config.Default()
	cfg := space.DefaultConfig()
	if *cfgStr != "" {
		parsed, err := config.ParseKey(*cfgStr)
		if err != nil {
			return err
		}
		if cfg, err = space.Clamp(parsed); err != nil {
			return err
		}
	}
	workload := tpcw.Workload{Mix: mix, Clients: *clients}

	tel := newSimTelemetry()
	if !*noCch {
		tel.memo = surface.New(tel.reg)
	}
	var runErr error
	switch {
	case *valDir != "":
		runErr = validateScenarios(*valDir)
	case *wlScen != "":
		runErr = runScenario(space, cfg, lvl, *wlScen, *seed, *warmup, *interval, tel)
	case *scenPath != "":
		runErr = runFaults(space, cfg, workload, lvl, *scenPath, *nIvals, *seed, *warmup, *interval, tel)
	case *sweep != "":
		runErr = runSweep(space, cfg, workload, lvl, *sweep, *seed, *warmup, *interval, *procs, tel)
	default:
		runErr = runOnce(space, cfg, workload, lvl, *seed, *warmup, *interval, tel)
	}
	if runErr == nil && *telPath != "" {
		runErr = tel.dump(*telPath)
	}
	return runErr
}

// simTelemetry instruments the simulator runs so -telemetry snapshots record
// what was measured. It also carries the measurement memo (nil with
// -nocache): racsim_measurements_total counts simulations actually run, so
// memo hits are visible as the gap between it and the cache counters.
type simTelemetry struct {
	reg          *telemetry.Registry
	measurements *telemetry.Counter
	meanRT       *telemetry.Histogram
	memo         *surface.Cache
}

func newSimTelemetry() *simTelemetry {
	reg := telemetry.NewRegistry()
	return &simTelemetry{
		reg: reg,
		measurements: reg.Counter("racsim_measurements_total",
			"Simulated measurement intervals run.", nil),
		meanRT: reg.Histogram("racsim_mean_rt_seconds",
			"Mean response times measured across runs, in paper seconds.", nil, nil),
	}
}

// record folds one measurement into the instruments.
func (t *simTelemetry) record(st webtier.Stats) {
	t.measurements.Inc()
	t.meanRT.Observe(st.MeanRT)
}

// dump writes the registry snapshot as JSON to path, or stdout for "-".
func (t *simTelemetry) dump(path string) error {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(t.reg.Snapshot())
}

func measure(space *config.Space, cfg config.Config, w tpcw.Workload, lvl vmenv.Level,
	seed uint64, warmup, interval float64, tel *simTelemetry) (webtier.Stats, error) {

	// One simulated measurement is a pure function of everything in this key,
	// so repeated identical requests can be served from the memo.
	key := fmt.Sprintf("%s|%d|%s|%d|%g|%g|%s", w.Mix, w.Clients, lvl.Name, seed, warmup, interval, cfg.Key())
	st, err := tel.memo.DoValue(key, func() (any, error) {
		params, err := webtier.ParamsFromConfig(space, cfg)
		if err != nil {
			return webtier.Stats{}, err
		}
		model, err := webtier.New(webtier.Options{
			Params:   &params,
			Workload: w,
			AppLevel: lvl,
			Seed:     seed,
		})
		if err != nil {
			return webtier.Stats{}, err
		}
		model.Warmup(warmup)
		st, err := model.Run(interval)
		if err == nil {
			tel.record(st)
		}
		return st, err
	})
	if st == nil {
		return webtier.Stats{}, err
	}
	return st.(webtier.Stats), err
}

func runOnce(space *config.Space, cfg config.Config, w tpcw.Workload, lvl vmenv.Level,
	seed uint64, warmup, interval float64, tel *simTelemetry) error {

	st, err := measure(space, cfg, w, lvl, seed, warmup, interval, tel)
	if err != nil {
		return err
	}
	fmt.Printf("workload: %s on %s\n", w, lvl)
	fmt.Printf("config:   %s\n", cfg.Format(space))
	fmt.Printf("meanRT %.3fs  p95 %.3fs  X %.1f req/s  inflight %.1f  wait %.1f  util %.2f  io %.2f  workers %.0f  threads %.0f\n",
		st.MeanRT, st.P95RT, st.Throughput, st.MeanInFlight, st.MeanWaiting,
		st.AppVMUtil, st.IOFactor, st.WebWorkers, st.AppThreads)
	return nil
}

// runFaults replays a fault scenario against the simulated system at a fixed
// configuration — no agent, no tuning — so a scenario's raw effect on the
// measurements can be inspected interval by interval before it is handed to
// racagent or racbench.
func runFaults(space *config.Space, cfg config.Config, w tpcw.Workload, lvl vmenv.Level,
	scenPath string, intervals int, seed uint64, warmup, interval float64, tel *simTelemetry) error {

	built, err := rac.BuildSystem(rac.SystemSpec{
		Backend:        "sim",
		Space:          space,
		Initial:        cfg,
		Context:        system.Context{Name: "racsim", Workload: w, Level: lvl},
		Seed:           seed,
		SettleSeconds:  warmup,
		MeasureSeconds: interval,
		FaultsPath:     scenPath,
		Telemetry:      tel.reg,
	})
	if err != nil {
		return err
	}
	sys := built.Faulty
	sc := sys.Scenario()

	name := sc.Name
	if name == "" {
		name = "unnamed"
	}
	fmt.Printf("scenario: %q (%d rules) on %s on %s, config %s\n\n", name, len(sc.Rules), w, lvl, cfg.Format(space))
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "interval\tmeanRT(s)\tp95(s)\tX(req/s)\tcompleted\terrors\tfaults")
	for i := 1; i <= intervals; i++ {
		before := len(sys.Injected())
		m, err := sys.Measure(context.Background())
		fired := ""
		for _, inj := range sys.Injected()[before:] {
			if fired != "" {
				fired += ", "
			}
			fired += string(inj.Kind)
		}
		if err != nil {
			fmt.Fprintf(tw, "%d\t-\t-\t-\t-\t-\t%s (measure failed: %v)\n", i, fired, err)
			continue
		}
		tel.measurements.Inc()
		tel.meanRT.Observe(m.MeanRT)
		fmt.Fprintf(tw, "%d\t%.3f\t%.3f\t%.1f\t%d\t%d\t%s\n",
			i, m.MeanRT, m.P95RT, m.Throughput, m.Completed, m.Errors, fired)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Printf("\n%d faults injected over %d intervals\n", len(sys.Injected()), intervals)
	return nil
}

// runScenario replays a workload scenario against the simulated system at a
// fixed configuration — no agent, no tuning — measuring one steady-state
// interval per scenario window so a scenario's raw load shape can be
// inspected before it is handed to racagent or racbench. Each window is an
// independent seeded run, so the table is reproducible row by row.
func runScenario(space *config.Space, cfg config.Config, lvl vmenv.Level,
	arg string, seed uint64, warmup, interval float64, tel *simTelemetry) error {

	sc, err := workload.Resolve(arg)
	if err != nil {
		return err
	}
	sched, err := workload.Compile(sc)
	if err != nil {
		return err
	}
	seq := workload.NewSequencer(sched, sc.Interval())
	seq.SetTelemetry(tel.reg)

	fmt.Printf("scenario: %q (%d phases, %.0fs, %d intervals of %.0fs) on %s, config %s\n\n",
		sc.Name, len(sc.Phases), sched.Duration(), seq.Len(), seq.IntervalSeconds(),
		lvl, cfg.Format(space))
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "interval\tphase\tmix\tclients\toffered\tmeanRT(s)\tp95(s)\tX(req/s)")
	for i := 0; i < seq.Len(); i++ {
		iv := seq.Observe(i)
		st, err := measure(space, cfg, iv.Workload, lvl, seed+uint64(i), warmup, interval, tel)
		if err != nil {
			return fmt.Errorf("interval %d: %w", i+1, err)
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%d\t%.1f\t%.3f\t%.3f\t%.1f\n",
			i+1, iv.PhaseName, iv.Workload.Mix, iv.Workload.Clients,
			iv.OfferedRate, st.MeanRT, st.P95RT, st.Throughput)
	}
	return tw.Flush()
}

// validateScenarios loads and compiles every *.json scenario in dir — the
// workload-smoke gate that keeps the shipped scenario files honest.
func validateScenarios(dir string) error {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no *.json scenarios in %s", dir)
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "file\tscenario\tphases\tduration(s)\tintervals")
	for _, p := range paths {
		sc, err := workload.LoadFile(p)
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		sched, err := workload.Compile(sc)
		if err != nil {
			return fmt.Errorf("%s: compile: %w", p, err)
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.0f\t%d\n", filepath.Base(p), sc.Name,
			len(sc.Phases), sched.Duration(), workload.NewSequencer(sched, sc.Interval()).Len())
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Printf("%d scenarios ok\n", len(paths))
	return nil
}

func runSweep(space *config.Space, cfg config.Config, w tpcw.Workload, lvl vmenv.Level,
	paramName string, seed uint64, warmup, interval float64, procs int, tel *simTelemetry) error {

	var def config.Def
	found := false
	idx := 0
	for i, d := range space.Defs() {
		if d.Name == paramName {
			def, found, idx = d, true, i
			break
		}
	}
	if !found {
		return fmt.Errorf("unknown parameter %q", paramName)
	}

	// Every sweep point simulates an independent model from the same seed,
	// so the pool changes wall-clock only; rows print in lattice order.
	stats, err := parallel.Map(parallel.Options{Procs: procs, Telemetry: tel.reg},
		def.Levels(), func(lvlIdx int) (webtier.Stats, error) {
			c := cfg.Clone()
			c[idx] = def.Value(lvlIdx)
			return measure(space, c, w, lvl, seed, warmup, interval, tel)
		})
	if err != nil {
		return err
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\tmeanRT(s)\tp95(s)\tX(req/s)\tinflight\twait\tutil\tio\n", def.Name)
	for lvlIdx, st := range stats {
		fmt.Fprintf(tw, "%d\t%.3f\t%.3f\t%.1f\t%.1f\t%.1f\t%.2f\t%.2f\n",
			def.Value(lvlIdx), st.MeanRT, st.P95RT, st.Throughput, st.MeanInFlight,
			st.MeanWaiting, st.AppVMUtil, st.IOFactor)
	}
	return tw.Flush()
}
